#include "parser/printer.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace polaris {
namespace {

/// Round-trip helper: parse, print, re-parse, print again — the two printed
/// forms must be identical (print is a fixed point after one round).
std::string round_trip(const std::string& source) {
  auto p1 = parse_program(source);
  std::string out1 = to_source(*p1);
  auto p2 = parse_program(out1);
  std::string out2 = to_source(*p2);
  EXPECT_EQ(out1, out2) << "printer output is not stable under re-parsing";
  return out1;
}

TEST(PrinterTest, SimpleProgramRoundTrips) {
  std::string out = round_trip(
      "      program t\n"
      "      integer n\n"
      "      parameter (n = 10)\n"
      "      real a(n)\n"
      "      do i = 1, n\n"
      "        a(i) = i*2.0\n"
      "      end do\n"
      "      end\n");
  EXPECT_NE(out.find("program t"), std::string::npos);
  EXPECT_NE(out.find("parameter (n = 10)"), std::string::npos);
  EXPECT_NE(out.find("do i = 1, n"), std::string::npos);
  EXPECT_NE(out.find("end do"), std::string::npos);
}

TEST(PrinterTest, IfChainsRoundTrip) {
  std::string out = round_trip(
      "      if (x .lt. 1.0) then\n"
      "        y = 1\n"
      "      else if (x .lt. 2.0) then\n"
      "        y = 2\n"
      "      else\n"
      "        y = 3\n"
      "      end if\n");
  EXPECT_NE(out.find("else if (x.lt.2.0) then"), std::string::npos);
}

TEST(PrinterTest, LabelsPreserved) {
  std::string out = round_trip(
      "      program t\n"
      "      goto 10\n"
      "   10 continue\n"
      "      end\n");
  EXPECT_NE(out.find("goto 10"), std::string::npos);
  // The label survives the round trip and is re-resolvable.
  auto p2 = parse_program(out);
  ASSERT_NE(p2->main()->stmts().find_label(10), nullptr);
  EXPECT_EQ(p2->main()->stmts().find_label(10)->kind(), StmtKind::Continue);
}

TEST(PrinterTest, SubroutineHeaderAndCommon) {
  std::string out = round_trip(
      "      subroutine f(a, n)\n"
      "      real a(n)\n"
      "      common /shared/ x, y\n"
      "      x = a(1)\n"
      "      end\n");
  EXPECT_NE(out.find("subroutine f(a,n)"), std::string::npos);
  EXPECT_NE(out.find("common /shared/ x, y"), std::string::npos);
}

TEST(PrinterTest, DataValuesPreserved) {
  std::string out = round_trip(
      "      program t\n"
      "      real a(3)\n"
      "      data a /1.0, 2.0, 3.0/\n"
      "      end\n");
  EXPECT_NE(out.find("data a /1.0,2.0,3.0/"), std::string::npos);
}

TEST(PrinterTest, DoallDirectiveEmitted) {
  auto p = parse_program(
      "      program t\n"
      "      real a(10)\n"
      "      do i = 1, 10\n"
      "        a(i) = 0.0\n"
      "      end do\n"
      "      end\n");
  DoStmt* d = p->main()->stmts().loops()[0];
  d->par.is_parallel = true;
  d->par.private_vars.push_back(p->main()->symtab().lookup("i"));
  std::string out = to_source(*p);
  EXPECT_NE(out.find("!csrd$ doall private(i)"), std::string::npos);
}

TEST(PrinterTest, OpenMpDirectiveStyle) {
  auto p = parse_program(
      "      program t\n"
      "      real a(10)\n"
      "      do i = 1, 10\n"
      "        r = i*0.5\n"
      "        a(i) = r\n"
      "      end do\n"
      "      x = r\n"
      "      end\n");
  DoStmt* d = p->main()->stmts().loops()[0];
  d->par.is_parallel = true;
  d->par.private_vars.push_back(p->main()->symtab().lookup("r"));
  d->par.lastvalue_vars.push_back(p->main()->symtab().lookup("r"));
  ReductionInfo red;
  red.var = p->main()->symtab().lookup("a");
  red.op = ReductionKind::Sum;
  red.histogram = true;
  d->par.reductions.push_back(red);
  std::string omp = to_source(*p, DirectiveStyle::OpenMP);
  EXPECT_NE(omp.find("!$omp parallel do private(r) reduction(+:a) "
                     "lastprivate(r)"),
            std::string::npos)
      << omp;
  // The default style keeps the historical directive.
  std::string csrd = to_source(*p);
  EXPECT_NE(csrd.find("!csrd$ doall private(r) reduction(+:a,histogram) "
                      "lastvalue(r)"),
            std::string::npos)
      << csrd;
}

TEST(PrinterTest, ReductionDirective) {
  auto p = parse_program(
      "      program t\n"
      "      s = 0.0\n"
      "      do i = 1, 10\n"
      "        s = s + 1.0\n"
      "      end do\n"
      "      end\n");
  DoStmt* d = p->main()->stmts().loops()[0];
  d->par.is_parallel = true;
  ReductionInfo r;
  r.var = p->main()->symtab().lookup("s");
  r.op = ReductionKind::Sum;
  d->par.reductions.push_back(r);
  std::string out = to_source(*p);
  EXPECT_NE(out.find("reduction(+:s)"), std::string::npos);
}

TEST(PrinterTest, FunctionHeader) {
  std::string out = round_trip(
      "      real function f(x)\n"
      "      f = x + 1.0\n"
      "      end\n"
      "      program t\n"
      "      y = f(1.0)\n"
      "      end\n");
  EXPECT_NE(out.find("real function f(x)"), std::string::npos);
}

TEST(PrinterTest, NestedIndentation) {
  std::string out = round_trip(
      "      do i = 1, 2\n"
      "      do j = 1, 2\n"
      "      x = 1\n"
      "      end do\n"
      "      end do\n");
  // Inner assignment indented three levels (unit body + two loops).
  EXPECT_NE(out.find("      x = 1"), std::string::npos);
}

}  // namespace
}  // namespace polaris
