#include "parser/lexer.h"

#include <gtest/gtest.h>

#include "support/assert.h"

namespace polaris {
namespace {

TEST(LexerTest, TokenizesIdentifiersAndInts) {
  auto toks = tokenize("do i = 1, 10");
  ASSERT_EQ(toks.size(), 7u);  // do i = 1 , 10 EOL
  EXPECT_EQ(toks[0].kind, TokKind::Ident);
  EXPECT_EQ(toks[0].text, "do");
  EXPECT_EQ(toks[3].kind, TokKind::IntLit);
  EXPECT_EQ(toks[3].int_value, 1);
  EXPECT_EQ(toks[5].int_value, 10);
  EXPECT_EQ(toks.back().kind, TokKind::EndOfLine);
}

TEST(LexerTest, CaseInsensitiveIdentifiers) {
  auto toks = tokenize("CALL FooBar(X)");
  EXPECT_EQ(toks[0].text, "call");
  EXPECT_EQ(toks[1].text, "foobar");
}

TEST(LexerTest, RealLiterals) {
  auto toks = tokenize("1.5 0.5 2e3 1.5d0 2.d0");
  EXPECT_EQ(toks[0].kind, TokKind::RealLit);
  EXPECT_DOUBLE_EQ(toks[0].real_value, 1.5);
  EXPECT_FALSE(toks[0].is_double);
  EXPECT_DOUBLE_EQ(toks[1].real_value, 0.5);
  EXPECT_DOUBLE_EQ(toks[2].real_value, 2000.0);
  EXPECT_TRUE(toks[3].is_double);
  EXPECT_DOUBLE_EQ(toks[3].real_value, 1.5);
  EXPECT_TRUE(toks[4].is_double);
  EXPECT_DOUBLE_EQ(toks[4].real_value, 2.0);
}

TEST(LexerTest, IntFollowedByDotOpIsNotAReal) {
  // "1.lt.x" must lex as 1 .lt. x, not as real 1. followed by garbage.
  auto toks = tokenize("if (1.lt.x) goto 10");
  bool found_dotop = false;
  for (const auto& t : toks)
    if (t.kind == TokKind::DotOp && t.text == "lt") found_dotop = true;
  EXPECT_TRUE(found_dotop);
}

TEST(LexerTest, DotOperators) {
  auto toks = tokenize("a .lt. b .and. .not. c .or. .true.");
  std::vector<std::string> dotops;
  for (const auto& t : toks)
    if (t.kind == TokKind::DotOp) dotops.push_back(t.text);
  EXPECT_EQ(dotops, (std::vector<std::string>{"lt", "and", "not", "or",
                                              "true"}));
}

TEST(LexerTest, TwoCharPuncts) {
  auto toks = tokenize("a ** b <= c");
  EXPECT_EQ(toks[1].text, "**");
  EXPECT_EQ(toks[3].text, "<=");
}

TEST(LexerTest, StringLiterals) {
  auto toks = tokenize("print *, 'hello ''world'''");
  bool found = false;
  for (const auto& t : toks)
    if (t.kind == TokKind::StringLit) {
      EXPECT_EQ(t.text, "hello 'world'");
      found = true;
    }
  EXPECT_TRUE(found);
}

TEST(LexerTest, InlineCommentStopsLine) {
  auto toks = tokenize("x = 1 ! trailing comment");
  ASSERT_EQ(toks.size(), 4u);  // x = 1 EOL
}

TEST(LexerTest, UnterminatedStringThrows) {
  EXPECT_THROW(tokenize("x = 'oops"), UserError);
}

TEST(LexerTest, BadCharacterThrows) {
  EXPECT_THROW(tokenize("x = a @ b"), UserError);
}

TEST(LexerTest, LogicalLinesDropComments) {
  auto lines = lex("c comment line\n      x = 1\n! another\n      y = 2\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].tokens[0].text, "x");
  EXPECT_EQ(lines[1].tokens[0].text, "y");
}

TEST(LexerTest, LabelsExtracted) {
  auto lines = lex("  100 continue\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].label, 100);
  EXPECT_EQ(lines[0].tokens[0].text, "continue");
}

TEST(LexerTest, ContinuationJoining) {
  auto lines = lex("      x = 1 + &\n     &    2\n");
  ASSERT_EQ(lines.size(), 1u);
  // x = 1 + 2 -> 6 tokens with EOL
  EXPECT_EQ(lines[0].tokens.size(), 6u);
}

TEST(LexerTest, DirectiveCommentsKept) {
  auto lines = lex("csrd$ doall\n      x = 1\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(lines[0].is_comment);
  EXPECT_EQ(lines[0].comment, "csrd$ doall");
}

TEST(LexerTest, StarColumnOneIsComment) {
  auto lines = lex("* old style comment\n      x = 1\n");
  ASSERT_EQ(lines.size(), 1u);
}

TEST(LexerTest, MaxLabelAccepted) {
  auto lines = lex("99999 continue\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].label, 99999);
}

TEST(LexerTest, LeadingZerosDoNotInflateLabel) {
  auto lines = lex("0000000100 continue\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].label, 100);
}

TEST(LexerTest, LabelJustOverMaxThrows) {
  EXPECT_THROW(lex("100000 continue\n"), UserError);
}

TEST(LexerTest, OversizedLabelIsPositionedUserError) {
  // A 15-digit label used to escape as std::out_of_range from std::stoi;
  // it must surface as a positioned lex error instead.
  try {
    lex("      x = 1\n123456789012345 continue\n");
    FAIL() << "expected UserError";
  } catch (const UserError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("123456789012345"), std::string::npos) << msg;
    EXPECT_NE(msg.find("exceeds the maximum 99999"), std::string::npos) << msg;
  }
}

TEST(LexerTest, LineOffsetShiftsDiagnosticsAndSourceLines) {
  auto lines = lex("      x = 1\ncsrd$ doall\n", /*line_offset=*/10);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].source_line, 11);
  EXPECT_EQ(lines[1].source_line, 12);
  try {
    lex("      x = 'oops\n", /*line_offset=*/41);
    FAIL() << "expected UserError";
  } catch (const UserError& e) {
    EXPECT_NE(std::string(e.what()).find("line 42"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace polaris
