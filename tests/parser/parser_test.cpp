#include "parser/parser.h"

#include <gtest/gtest.h>

namespace polaris {
namespace {

TEST(ParserTest, MinimalProgram) {
  auto p = parse_program(
      "      program hello\n"
      "      x = 1.5\n"
      "      end\n");
  ProgramUnit* main = p->main();
  EXPECT_EQ(main->name(), "hello");
  ASSERT_EQ(main->stmts().size(), 1u);
  EXPECT_EQ(main->stmts().first()->kind(), StmtKind::Assign);
}

TEST(ParserTest, ImplicitMainWrapping) {
  auto p = parse_program("x = 1\n");
  EXPECT_EQ(p->main()->name(), "main");
}

TEST(ParserTest, ImplicitTyping) {
  auto p = parse_program("k = 1\nx = 2.0\n");
  ProgramUnit* m = p->main();
  EXPECT_EQ(m->symtab().lookup("k")->type(), Type::integer());
  EXPECT_EQ(m->symtab().lookup("x")->type(), Type::real());
}

TEST(ParserTest, Declarations) {
  auto p = parse_program(
      "      program t\n"
      "      integer n, m\n"
      "      real a(10, 0:20), b\n"
      "      real*8 d\n"
      "      double precision e\n"
      "      logical flag\n"
      "      end\n");
  ProgramUnit* m = p->main();
  EXPECT_EQ(m->symtab().lookup("n")->type(), Type::integer());
  Symbol* a = m->symtab().lookup("a");
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->rank(), 2);
  EXPECT_EQ(a->dims()[1].lower->to_string(), "0");
  EXPECT_EQ(a->dims()[1].upper->to_string(), "20");
  EXPECT_EQ(m->symtab().lookup("d")->type(), Type::double_precision());
  EXPECT_EQ(m->symtab().lookup("e")->type(), Type::double_precision());
  EXPECT_EQ(m->symtab().lookup("flag")->type(), Type::logical());
}

TEST(ParserTest, ParameterAndDimension) {
  auto p = parse_program(
      "      program t\n"
      "      parameter (n = 100, m = n*2)\n"
      "      dimension a(m)\n"
      "      a(1) = 0.0\n"
      "      end\n");
  ProgramUnit* u = p->main();
  Symbol* n = u->symtab().lookup("n");
  EXPECT_EQ(n->kind(), SymbolKind::Parameter);
  EXPECT_EQ(n->param_value()->to_string(), "100");
  Symbol* a = u->symtab().lookup("a");
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->dims()[0].upper->to_string(), "m");
}

TEST(ParserTest, CommonBlocks) {
  auto p = parse_program(
      "      program t\n"
      "      common /blk/ a, b(10)\n"
      "      a = 1.0\n"
      "      end\n");
  Symbol* a = p->main()->symtab().lookup("a");
  Symbol* b = p->main()->symtab().lookup("b");
  EXPECT_EQ(a->common_block(), "blk");
  EXPECT_TRUE(b->is_array());
  EXPECT_EQ(b->common_block(), "blk");
}

TEST(ParserTest, DataStatements) {
  auto p = parse_program(
      "      program t\n"
      "      real x, a(4)\n"
      "      data x /1.5/\n"
      "      data a /2*0.0, 2*1.0/\n"
      "      end\n");
  Symbol* x = p->main()->symtab().lookup("x");
  ASSERT_EQ(x->data_values().size(), 1u);
  Symbol* a = p->main()->symtab().lookup("a");
  ASSERT_EQ(a->data_values().size(), 4u);
  EXPECT_EQ(a->data_values()[1]->to_string(), "0.0");
  EXPECT_EQ(a->data_values()[2]->to_string(), "1.0");
}

TEST(ParserTest, ModernDoLoop) {
  auto p = parse_program(
      "      do i = 1, 10, 2\n"
      "        s = s + i\n"
      "      end do\n");
  auto loops = p->main()->stmts().loops();
  ASSERT_EQ(loops.size(), 1u);
  DoStmt* d = loops[0];
  EXPECT_EQ(d->index()->name(), "i");
  EXPECT_EQ(d->init().to_string(), "1");
  EXPECT_EQ(d->limit().to_string(), "10");
  EXPECT_EQ(d->step().to_string(), "2");
  ASSERT_NE(d->follow(), nullptr);
}

TEST(ParserTest, ClassicLabeledDo) {
  auto p = parse_program(
      "      do 100 i = 1, 10\n"
      "      do 100 j = 1, 10\n"
      "      s = s + i*j\n"
      "  100 continue\n");
  auto loops = p->main()->stmts().loops();
  ASSERT_EQ(loops.size(), 2u);
  // Both loops share the terminal label; two ENDDOs were synthesized.
  EXPECT_NE(loops[0]->follow(), nullptr);
  EXPECT_NE(loops[1]->follow(), nullptr);
  EXPECT_EQ(loops[1]->outer(), loops[0]);
  EXPECT_EQ(loops[0]->outer(), nullptr);
  // Inner loop is nested one level deep.
  EXPECT_EQ(p->main()->stmts().depth(loops[1]), 1);
}

TEST(ParserTest, BlockIfElse) {
  auto p = parse_program(
      "      if (x .lt. 1.0) then\n"
      "        y = 1\n"
      "      else if (x .lt. 2.0) then\n"
      "        y = 2\n"
      "      else\n"
      "        y = 3\n"
      "      end if\n");
  Statement* s = p->main()->stmts().first();
  ASSERT_EQ(s->kind(), StmtKind::If);
  auto* ifs = static_cast<IfStmt*>(s);
  EXPECT_EQ(ifs->cond().to_string(), "x.lt.1.0");
  ASSERT_NE(ifs->next_arm(), nullptr);
  EXPECT_EQ(ifs->next_arm()->kind(), StmtKind::ElseIf);
}

TEST(ParserTest, LogicalIfDesugarsToBlock) {
  auto p2 = parse_program(
      "      program t\n"
      "      integer ind(100)\n"
      "      if (r .lt. rcuts) ind(j) = 1\n"
      "      end\n");
  auto& stmts = p2->main()->stmts();
  ASSERT_EQ(stmts.size(), 3u);
  EXPECT_EQ(stmts.first()->kind(), StmtKind::If);
  EXPECT_EQ(stmts.first()->next()->kind(), StmtKind::Assign);
  EXPECT_EQ(stmts.last()->kind(), StmtKind::EndIf);
}

TEST(ParserTest, GotoAndContinue) {
  auto p = parse_program(
      "      program t\n"
      "      goto 10\n"
      "   10 continue\n"
      "      end\n");
  auto& stmts = p->main()->stmts();
  EXPECT_EQ(stmts.first()->kind(), StmtKind::Goto);
  EXPECT_EQ(static_cast<GotoStmt*>(stmts.first())->target(), 10);
  EXPECT_EQ(stmts.find_label(10)->kind(), StmtKind::Continue);
}

TEST(ParserTest, SubroutineWithFormalsAndCall) {
  auto p = parse_program(
      "      program t\n"
      "      call init(a, 10)\n"
      "      end\n"
      "      subroutine init(x, n)\n"
      "      real x(n)\n"
      "      x(1) = 0.0\n"
      "      return\n"
      "      end\n");
  ProgramUnit* sub = p->find("init");
  ASSERT_NE(sub, nullptr);
  EXPECT_EQ(sub->kind(), UnitKind::Subroutine);
  ASSERT_EQ(sub->formals().size(), 2u);
  EXPECT_EQ(sub->formals()[0]->name(), "x");
  EXPECT_TRUE(sub->formals()[0]->is_array());
  Statement* call = p->main()->stmts().first();
  ASSERT_EQ(call->kind(), StmtKind::Call);
  EXPECT_EQ(static_cast<CallStmt*>(call)->name(), "init");
}

TEST(ParserTest, FunctionUnit) {
  auto p = parse_program(
      "      real function f(x)\n"
      "      f = x*2.0\n"
      "      end\n"
      "      program t\n"
      "      y = f(1.0)\n"
      "      end\n");
  ProgramUnit* f = p->find("f");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->kind(), UnitKind::Function);
  ASSERT_NE(f->result(), nullptr);
  EXPECT_EQ(f->result()->type(), Type::real());
  // y = f(1.0) parses as a FuncCall.
  auto* assign = static_cast<AssignStmt*>(p->main()->stmts().first());
  EXPECT_EQ(assign->rhs().kind(), ExprKind::FuncCall);
}

TEST(ParserTest, IntrinsicCanonicalization) {
  SymbolTable t;
  ExprPtr e = parse_expression("dsqrt(dabs(x)) + amax1(a, b)", t);
  std::string s = e->to_string();
  EXPECT_NE(s.find("sqrt("), std::string::npos);
  EXPECT_NE(s.find("abs("), std::string::npos);
  EXPECT_NE(s.find("max("), std::string::npos);
}

TEST(ParserTest, IntrinsicTypes) {
  SymbolTable t;
  EXPECT_EQ(parse_expression("mod(i, 2)", t)->type(), Type::integer());
  EXPECT_EQ(parse_expression("sqrt(2.0)", t)->type(), Type::real());
  EXPECT_EQ(parse_expression("abs(i)", t)->type(), Type::integer());
  EXPECT_EQ(parse_expression("int(x)", t)->type(), Type::integer());
}

TEST(ParserTest, OperatorPrecedence) {
  SymbolTable t;
  EXPECT_EQ(parse_expression("a + b*c", t)->to_string(), "a+b*c");
  EXPECT_EQ(parse_expression("(a + b)*c", t)->to_string(), "(a+b)*c");
  EXPECT_EQ(parse_expression("a ** b ** c", t)->to_string(), "a**b**c");
  EXPECT_EQ(parse_expression("-a + b", t)->to_string(), "-a+b");
  EXPECT_EQ(parse_expression("a .lt. b .and. c .lt. d", t)->to_string(),
            "a.lt.b.and.c.lt.d");
}

TEST(ParserTest, ModernRelationalOperators) {
  SymbolTable t;
  EXPECT_EQ(parse_expression("a <= b", t)->to_string(), "a.le.b");
  EXPECT_EQ(parse_expression("a /= b", t)->to_string(), "a.ne.b");
}

TEST(ParserTest, PrintAndWrite) {
  auto p = parse_program(
      "      print *, x, y\n"
      "      write(*,*) z\n");
  auto& stmts = p->main()->stmts();
  ASSERT_EQ(stmts.size(), 2u);
  EXPECT_EQ(stmts.first()->kind(), StmtKind::Print);
  EXPECT_EQ(static_cast<PrintStmt*>(stmts.first())->items().size(), 2u);
  EXPECT_EQ(stmts.last()->kind(), StmtKind::Print);
}

TEST(ParserTest, ImplicitNoneEnforced) {
  EXPECT_THROW(parse_program("      program t\n"
                             "      implicit none\n"
                             "      x = 1\n"
                             "      end\n"),
               UserError);
}

TEST(ParserTest, UnsupportedStatementThrows) {
  EXPECT_THROW(parse_program("      open(1, file='x')\n"), UserError);
}

TEST(ParserTest, RankMismatchIsUserError) {
  EXPECT_THROW(parse_program("      program t\n"
                             "      real a(10,10)\n"
                             "      a(1) = 0.0\n"
                             "      end\n"),
               UserError);
}

TEST(ParserTest, TrfdStyleNest) {
  // The Figure 2 (TRFD) loop shape parses and preserves structure.
  auto p = parse_program(
      "      program trfd\n"
      "      real a(1000)\n"
      "      integer x, x0\n"
      "      x0 = 0\n"
      "      do i = 0, m-1\n"
      "        x = x0\n"
      "        do j = 0, n-1\n"
      "          do k = 0, j-1\n"
      "            x = x + 1\n"
      "            a(x) = 1.0\n"
      "          end do\n"
      "        end do\n"
      "        x0 = x0 + (n**2 + n)/2\n"
      "      end do\n"
      "      end\n");
  auto loops = p->main()->stmts().loops();
  ASSERT_EQ(loops.size(), 3u);
  EXPECT_EQ(loops[2]->limit().to_string(), "j-1");
  EXPECT_EQ(p->main()->stmts().depth(loops[2]), 2);
}

}  // namespace
}  // namespace polaris
