// Parser robustness: mutated suite sources must never crash or hang — the
// frontend either parses them or raises a typed error.  (InternalError is
// tolerated here only for structural violations the parser defers to the
// IR's consistency checks, e.g. duplicated labels; crashes and infinite
// loops are the bugs this guards against.)
#include <gtest/gtest.h>

#include <random>

#include "parser/parser.h"
#include "suite/suite.h"

namespace polaris {
namespace {

class ParserFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParserFuzz, MutatedSourcesDoNotCrash) {
  std::mt19937 rng(GetParam());
  const auto& suite = benchmark_suite();
  std::string src = suite[rng() % suite.size()].source;

  // Apply a handful of random single-character mutations.
  const char alphabet[] = "abcxyz0189()+-*/=.,$ \n";
  int mutations = 1 + static_cast<int>(rng() % 8);
  for (int m = 0; m < mutations; ++m) {
    size_t pos = rng() % src.size();
    switch (rng() % 3) {
      case 0:
        src[pos] = alphabet[rng() % (sizeof(alphabet) - 1)];
        break;
      case 1:
        src.erase(pos, 1 + rng() % 3);
        break;
      default:
        src.insert(pos, 1, alphabet[rng() % (sizeof(alphabet) - 1)]);
        break;
    }
    if (src.empty()) src = "x = 1\n";
  }

  try {
    auto prog = parse_program(src);
    // Parsed: the IR must at least print and revalidate.
    for (const auto& unit : prog->units()) unit->stmts().revalidate();
  } catch (const UserError&) {
    // expected for malformed input
  } catch (const InternalError&) {
    // structural violation caught by the consistency layer — acceptable
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(1u, 65u));

}  // namespace
}  // namespace polaris
