// Parser robustness: mutated suite sources must never crash, hang, or leak
// an InternalError — parse_program is a UserError boundary (malformed input
// is the *user's* problem, exit 1), so every failure mode of the frontend
// must surface as UserError.  When parsing succeeds, the resulting IR must
// survive revalidation AND the structural verifier.
#include <gtest/gtest.h>

#include <random>

#include "ir/verifier.h"
#include "parser/parser.h"
#include "suite/suite.h"

namespace polaris {
namespace {

class ParserFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParserFuzz, MutatedSourcesNeverLeakInternalError) {
  std::mt19937 rng(GetParam());
  const auto& suite = benchmark_suite();
  std::string src = suite[rng() % suite.size()].source;

  // Apply a handful of random single-character mutations.
  const char alphabet[] = "abcxyz0189()+-*/=.,$ \n";
  int mutations = 1 + static_cast<int>(rng() % 8);
  for (int m = 0; m < mutations; ++m) {
    size_t pos = rng() % src.size();
    switch (rng() % 3) {
      case 0:
        src[pos] = alphabet[rng() % (sizeof(alphabet) - 1)];
        break;
      case 1:
        src.erase(pos, 1 + rng() % 3);
        break;
      default:
        src.insert(pos, 1, alphabet[rng() % (sizeof(alphabet) - 1)]);
        break;
    }
    if (src.empty()) src = "x = 1\n";
  }

  try {
    auto prog = parse_program(src);
    // Parsed: the IR must revalidate and pass the structural verifier.
    for (const auto& unit : prog->units()) unit->stmts().revalidate();
    std::vector<VerifierViolation> vs = verify_program(*prog);
    EXPECT_TRUE(vs.empty()) << format_violations(vs);
  } catch (const UserError&) {
    // expected for malformed input
  }
  // InternalError deliberately NOT caught: parse_program converts parser
  // invariant failures to UserError, so one escaping here is a real bug.
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(1u, 65u));

/// Either parses cleanly (IR verifies) or raises UserError; anything else
/// (InternalError, crash) fails the test.
void expect_clean_outcome(const std::string& src, const std::string& what) {
  try {
    auto prog = parse_program(src);
    std::vector<VerifierViolation> vs = verify_program(*prog);
    EXPECT_TRUE(vs.empty()) << what << ": " << format_violations(vs);
  } catch (const UserError&) {
    // the clean failure mode
  }
}

TEST(ParserRobustness, TruncatedSuiteCodesYieldUserError) {
  for (const auto& bench : benchmark_suite()) {
    const std::string& src = bench.source;
    // Cut mid-statement at several fractions, including mid-line cuts that
    // leave dangling DO/IF nests and half tokens.
    for (double frac : {0.15, 0.4, 0.55, 0.7, 0.85, 0.97}) {
      std::string cut =
          src.substr(0, static_cast<size_t>(src.size() * frac));
      expect_clean_outcome(cut, bench.name + " truncated");
    }
  }
}

TEST(ParserRobustness, GarbledSuiteCodesYieldUserError) {
  for (const auto& bench : benchmark_suite()) {
    // Deterministic garbling: overwrite every 37th character.
    std::string garbled = bench.source;
    const char junk[] = ")(=$*";
    for (size_t i = 11; i < garbled.size(); i += 37)
      garbled[i] = junk[i % (sizeof(junk) - 1)];
    expect_clean_outcome(garbled, bench.name + " garbled");
  }
}

TEST(ParserRobustness, GiantLabelMutationsYieldUserError) {
  // Regression for the unguarded std::stoi label conversion: splice digit
  // runs long enough to overflow int/long onto statement fronts at several
  // points in every suite code.  None may escape as std::out_of_range.
  const char* giants[] = {"12345678901", "99999999999999999999",
                          "000000000000000000100"};
  for (const auto& bench : benchmark_suite()) {
    for (const char* digits : giants) {
      const std::string& src = bench.source;
      for (double frac : {0.1, 0.5, 0.9}) {
        std::string mutated = src;
        size_t pos = mutated.find('\n', static_cast<size_t>(
                                            mutated.size() * frac));
        if (pos == std::string::npos) pos = 0;
        mutated.insert(pos + 1, std::string(digits) + " ");
        expect_clean_outcome(mutated, bench.name + " giant label");
      }
    }
  }
}

}  // namespace
}  // namespace polaris
