#include "dep/regions.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace polaris {
namespace {

struct Fix {
  std::unique_ptr<Program> prog;
  ProgramUnit* unit;
  std::vector<DoStmt*> loops;

  explicit Fix(const std::string& src) : prog(parse_program(src)) {
    unit = prog->main();
    loops = unit->stmts().loops();
  }

  /// First array write statement inside loops[li].
  std::pair<const ArrayRef*, Statement*> first_write(size_t li) {
    DoStmt* d = loops[li];
    for (Statement* s = d->next(); s != d->follow(); s = s->next()) {
      if (s->kind() != StmtKind::Assign) continue;
      auto* a = static_cast<AssignStmt*>(s);
      if (a->lhs().kind() == ExprKind::ArrayRef)
        return {&static_cast<const ArrayRef&>(a->lhs()), s};
    }
    p_unreachable("no write found");
  }
};

TEST(RegionsTest, IntervalSweepsInnerLoop) {
  Fix f(
      "      program t\n"
      "      real a(1000)\n"
      "      do i = 1, 10\n"
      "        do j = 1, n\n"
      "          a(j + 1) = 0.0\n"
      "        end do\n"
      "      end do\n"
      "      end\n");
  auto [ref, stmt] = f.first_write(0);
  FactContext ctx = loop_fact_context(stmt);
  auto iv = access_interval(*ref, 0, stmt, f.loops[0], ctx);
  ASSERT_TRUE(iv.has_value());
  EXPECT_EQ(iv->lo.to_string(), "2");
  EXPECT_EQ(iv->hi.to_string(), "n+1");
}

TEST(RegionsTest, IntervalKeepsOuterIndexSymbolic) {
  Fix f(
      "      program t\n"
      "      real a(100,100)\n"
      "      do i = 1, 10\n"
      "        do j = 1, 5\n"
      "          a(i, j) = 0.0\n"
      "        end do\n"
      "      end do\n"
      "      end\n");
  auto [ref, stmt] = f.first_write(0);
  FactContext ctx = loop_fact_context(stmt);
  auto dim0 = access_interval(*ref, 0, stmt, f.loops[0], ctx);
  ASSERT_TRUE(dim0.has_value());
  EXPECT_EQ(dim0->lo.to_string(), "i");  // the enclosing loop stays free
  auto dim1 = access_interval(*ref, 1, stmt, f.loops[0], ctx);
  ASSERT_TRUE(dim1.has_value());
  EXPECT_EQ(dim1->lo.to_string(), "1");
  EXPECT_EQ(dim1->hi.to_string(), "5");
}

TEST(RegionsTest, OpaqueSubscriptFails) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      integer ix(100)\n"
      "      do i = 1, 10\n"
      "        do j = 1, 5\n"
      "          a(ix(j)) = 0.0\n"
      "        end do\n"
      "      end do\n"
      "      end\n");
  auto [ref, stmt] = f.first_write(0);
  FactContext ctx = loop_fact_context(stmt);
  EXPECT_FALSE(access_interval(*ref, 0, stmt, f.loops[0], ctx).has_value());
}

TEST(RegionsTest, ContainmentProofs) {
  Fix f(
      "      program t\n"
      "      do i = 1, n\n"
      "        x = 1\n"
      "      end do\n"
      "      end\n");
  SymbolTable& st = f.unit->symtab();
  FactContext ctx;
  Symbol* n = st.lookup("n");
  ExprPtr two = parse_expression("2", st);
  ctx.add_range(n, two.get(), nullptr);
  auto P = [&](const char* text) {
    ExprPtr e = parse_expression(text, st);
    return Polynomial::from_expr(*e);
  };
  Interval outer{P("1"), P("n")};
  Interval inner{P("2"), P("n - 1")};
  EXPECT_TRUE(interval_contains(outer, inner, ctx));
  EXPECT_FALSE(interval_contains(inner, outer, ctx));
  Interval same{P("1"), P("n")};
  EXPECT_TRUE(interval_contains(outer, same, ctx));
}

}  // namespace
}  // namespace polaris

namespace polaris {
namespace {

TEST(RegionsTest, GuardFactsFromEnclosingIf) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      if (n .ge. 2 .and. m .gt. n) then\n"
      "        do i = 1, 10\n"
      "          a(i) = 0.0\n"
      "        end do\n"
      "      end if\n"
      "      end\n");
  auto [ref, stmt] = f.first_write(0);
  FactContext ctx = loop_fact_context(stmt);
  SymbolTable& st = f.unit->symtab();
  auto P = [&](const char* text) {
    ExprPtr e = parse_expression(text, st);
    return Polynomial::from_expr(*e);
  };
  EXPECT_TRUE(prove_ge0(P("n - 2"), ctx));
  EXPECT_TRUE(prove_ge0(P("m - n - 1"), ctx));  // strict, integers
  EXPECT_FALSE(prove_ge0(P("n - 3"), ctx));
}

TEST(RegionsTest, ElseArmContributesNoFacts) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      if (n .ge. 5) then\n"
      "        x = 1.0\n"
      "      else\n"
      "        do i = 1, 10\n"
      "          a(i) = 0.0\n"
      "        end do\n"
      "      end if\n"
      "      end\n");
  auto [ref, stmt] = f.first_write(0);
  FactContext ctx = loop_fact_context(stmt);
  SymbolTable& st = f.unit->symtab();
  ExprPtr e = parse_expression("n - 5", st);
  EXPECT_FALSE(prove_ge0(Polynomial::from_expr(*e), ctx));
}

}  // namespace
}  // namespace polaris
