#include "dep/ddtest.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace polaris {
namespace {

struct DriverFixture {
  std::unique_ptr<Program> prog;
  ProgramUnit* unit;
  std::vector<DoStmt*> loops;
  Diagnostics diags;

  explicit DriverFixture(const std::string& src)
      : prog(parse_program(src)) {
    unit = prog->main();
    loops = unit->stmts().loops();
  }

  LoopDepStats run(DoStmt* loop, const Options& opts,
                   SymbolSet exempt = {}) {
    return test_loop_arrays(loop, opts, diags, exempt, "main/test");
  }
};

TEST(DdtestTest, IndependentLoopPolarisAndBaseline) {
  DriverFixture f(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, 100\n"
      "        a(i) = 1.0\n"
      "      end do\n"
      "      end\n");
  // Constant bounds: even the baseline proves it (Banerjee).
  auto base = f.run(f.loops[0], Options::baseline());
  EXPECT_TRUE(base.parallel());
  EXPECT_GT(base.by_banerjee + base.by_gcd, 0);
  auto pol = f.run(f.loops[0], Options::polaris());
  EXPECT_TRUE(pol.parallel());
}

TEST(DdtestTest, SymbolicBoundsNeedRangeTest) {
  DriverFixture f(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, n\n"
      "        a(i) = 1.0\n"
      "      end do\n"
      "      end\n");
  // The strong-SIV test (symbolic-bounds capable, standard by 1996)
  // proves the self-pair even for the baseline.
  auto base = f.run(f.loops[0], Options::baseline());
  EXPECT_TRUE(base.parallel());
  auto pol = f.run(f.loops[0], Options::polaris());
  EXPECT_TRUE(pol.parallel());
  EXPECT_EQ(pol.by_rangetest + pol.by_banerjee + pol.by_gcd, pol.pairs);
}

TEST(DdtestTest, BaselineFailsOnNonlinearPolarisSucceeds) {
  DriverFixture f(
      "      program t\n"
      "      real a(10000)\n"
      "      do i = 0, m - 1\n"
      "        do j = 1, n\n"
      "          a(n*i + j) = 1.0\n"
      "        end do\n"
      "      end do\n"
      "      end\n");
  auto base = f.run(f.loops[0], Options::baseline());
  EXPECT_FALSE(base.parallel());  // n*i is not affine for 1996 compilers
  auto pol = f.run(f.loops[0], Options::polaris());
  EXPECT_TRUE(pol.parallel());
  EXPECT_GT(pol.by_rangetest, 0);
}

TEST(DdtestTest, TrueDependenceNeverProven) {
  DriverFixture f(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 2, 100\n"
      "        a(i) = a(i - 1)\n"
      "      end do\n"
      "      end\n");
  auto base = f.run(f.loops[0], Options::baseline());
  EXPECT_FALSE(base.parallel());
  auto pol = f.run(f.loops[0], Options::polaris());
  EXPECT_FALSE(pol.parallel());
  EXPECT_FALSE(pol.blockers.empty());
}

TEST(DdtestTest, ExemptArraysSkipped) {
  DriverFixture f(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 2, 100\n"
      "        a(i) = a(i - 1)\n"
      "      end do\n"
      "      end\n");
  SymbolSet exempt = {f.unit->symtab().lookup("a")};
  auto pol = f.run(f.loops[0], Options::polaris(), exempt);
  EXPECT_TRUE(pol.parallel());
  EXPECT_EQ(pol.pairs, 0);
}

TEST(DdtestTest, ReadOnlyArraysAreFree) {
  DriverFixture f(
      "      program t\n"
      "      real a(100), b(100)\n"
      "      do i = 1, 100\n"
      "        a(i) = b(i) + b(i + 1)\n"
      "      end do\n"
      "      end\n");
  auto pol = f.run(f.loops[0], Options::polaris());
  EXPECT_TRUE(pol.parallel());
}

TEST(DdtestTest, DiagnosticsMentionBlocker) {
  DriverFixture f(
      "      program t\n"
      "      real a(100)\n"
      "      integer ind(100)\n"
      "      do i = 1, 100\n"
      "        a(ind(i)) = 1.0\n"
      "      end do\n"
      "      end\n");
  auto pol = f.run(f.loops[0], Options::polaris());
  EXPECT_FALSE(pol.parallel());
  EXPECT_TRUE(f.diags.contains("assumed dependence"));
}

TEST(DdtestTest, StatsCountPairs) {
  DriverFixture f(
      "      program t\n"
      "      real a(100), b(100)\n"
      "      do i = 1, 100\n"
      "        a(i) = a(i) + 1.0\n"
      "        b(i) = a(i)\n"
      "      end do\n"
      "      end\n");
  auto pol = f.run(f.loops[0], Options::polaris());
  EXPECT_TRUE(pol.parallel());
  // a: write+2 reads -> pairs (w,w),(w,r1),(w,r2); b: write self-pair.
  EXPECT_EQ(pol.pairs, 4);
}

}  // namespace
}  // namespace polaris
