#include "dep/linear.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace polaris {
namespace {

/// Builds a loop nest from source and exposes its loops/arrays.
struct NestFixture {
  std::unique_ptr<Program> prog;
  ProgramUnit* unit;
  std::vector<DoStmt*> loops;

  explicit NestFixture(const std::string& src) : prog(parse_program(src)) {
    unit = prog->main();
    loops = unit->stmts().loops();
  }

  Polynomial sub(const std::string& text) {
    ExprPtr e = parse_expression(text, unit->symtab());
    return Polynomial::from_expr(*e);
  }
};

TEST(LinearTest, ExtractSimpleAffine) {
  NestFixture f(
      "      do i = 1, 10\n"
      "        do j = 1, 20\n"
      "          x = 1\n"
      "        end do\n"
      "      end do\n");
  LinearForm lf = extract_linear(f.sub("2*i + 3*j + 5"), f.loops);
  ASSERT_TRUE(lf.valid);
  EXPECT_EQ(lf.coeffs.at(f.loops[0]), 2);
  EXPECT_EQ(lf.coeffs.at(f.loops[1]), 3);
  ASSERT_TRUE(lf.rest.is_constant());
  EXPECT_EQ(lf.rest.constant_value(), Rational(5));
}

TEST(LinearTest, SymbolicAdditivePartAllowed) {
  NestFixture f(
      "      do i = 1, 10\n"
      "        x = 1\n"
      "      end do\n");
  LinearForm lf = extract_linear(f.sub("i + n"), f.loops);
  ASSERT_TRUE(lf.valid);
  EXPECT_EQ(lf.coeffs.at(f.loops[0]), 1);
  EXPECT_FALSE(lf.rest.is_constant());
}

TEST(LinearTest, NonlinearFormsRejected) {
  NestFixture f(
      "      do i = 1, 10\n"
      "        x = 1\n"
      "      end do\n");
  EXPECT_FALSE(extract_linear(f.sub("i*i"), f.loops).valid);
  EXPECT_FALSE(extract_linear(f.sub("n*i"), f.loops).valid);   // symbolic coeff
  EXPECT_FALSE(extract_linear(f.sub("z(i)"), f.loops).valid);  // subscripted
}

TEST(LinearTest, GcdDisproves) {
  NestFixture f(
      "      do i = 1, 10\n"
      "        x = 1\n"
      "      end do\n");
  // 2i and 2i+1: difference 1 not divisible by gcd 2.
  LinearForm a = extract_linear(f.sub("2*i"), f.loops);
  LinearForm b = extract_linear(f.sub("2*i + 1"), f.loops);
  EXPECT_EQ(gcd_test(a, b), LinearVerdict::NoDependence);
  // 2i and 2i+4: divisible -> maybe.
  LinearForm c = extract_linear(f.sub("2*i + 4"), f.loops);
  EXPECT_EQ(gcd_test(a, c), LinearVerdict::MayDepend);
}

TEST(LinearTest, GcdWithSymbolicDifferenceIsMaybe) {
  NestFixture f(
      "      do i = 1, 10\n"
      "        x = 1\n"
      "      end do\n");
  LinearForm a = extract_linear(f.sub("2*i"), f.loops);
  LinearForm b = extract_linear(f.sub("2*i + n"), f.loops);
  EXPECT_EQ(gcd_test(a, b), LinearVerdict::MayDepend);
}

TEST(LinearTest, GcdSymbolicButEqualRestCancels) {
  NestFixture f(
      "      do i = 1, 10\n"
      "        x = 1\n"
      "      end do\n");
  // 2i + n vs 2i + n + 1: the symbolic n cancels, difference 1, gcd 2.
  LinearForm a = extract_linear(f.sub("2*i + n"), f.loops);
  LinearForm b = extract_linear(f.sub("2*i + n + 1"), f.loops);
  EXPECT_EQ(gcd_test(a, b), LinearVerdict::NoDependence);
}

TEST(LinearTest, ConstantBounds) {
  NestFixture f(
      "      parameter (m = 20)\n"
      "      do i = 1, m\n"
      "        x = 1\n"
      "      end do\n"
      "      do j = 10, 1, -1\n"
      "        x = 2\n"
      "      end do\n"
      "      do k = 1, n\n"
      "        x = 3\n"
      "      end do\n");
  auto b0 = constant_bounds(f.loops[0]);
  ASSERT_TRUE(b0.has_value());
  EXPECT_EQ(b0->lo, 1);
  EXPECT_EQ(b0->hi, 20);
  auto b1 = constant_bounds(f.loops[1]);
  ASSERT_TRUE(b1.has_value());
  EXPECT_EQ(b1->lo, 1);  // negative step swaps
  EXPECT_EQ(b1->hi, 10);
  EXPECT_FALSE(constant_bounds(f.loops[2]).has_value());  // symbolic n
}

TEST(LinearTest, BanerjeeProvesIndependence) {
  // a(i) = a(i): same subscript => carried dependence impossible since
  // directions '<'/'>' give nonzero difference i1 - i2 != 0... coefficient
  // 1 each: h = i - j, '<' means i < j so h <= -1 < 0: no zero crossing.
  NestFixture f(
      "      do i = 1, 100\n"
      "        x = 1\n"
      "      end do\n");
  LinearForm a = extract_linear(f.sub("i"), f.loops);
  EXPECT_EQ(banerjee_carried(a, a, f.loops, f.loops[0]),
            LinearVerdict::NoDependence);
}

TEST(LinearTest, BanerjeeDetectsPossibleDependence) {
  // a(i) vs a(i+1): h = i - j - 1; '<': i<j makes h range include 0? For
  // i = j - 1: h = -2... wait h = i - (j+1)... i in [1,99], j=i+1 gives
  // f(i)=i, g(j)=j+1: i1 = i2 + 1 possible -> dependence.
  NestFixture f(
      "      do i = 1, 100\n"
      "        x = 1\n"
      "      end do\n");
  LinearForm a = extract_linear(f.sub("i"), f.loops);
  LinearForm b = extract_linear(f.sub("i + 1"), f.loops);
  EXPECT_EQ(banerjee_carried(a, b, f.loops, f.loops[0]),
            LinearVerdict::MayDepend);
}

TEST(LinearTest, BanerjeeStrideExclusion) {
  // a(2i) vs a(2i+1): no dependence (GCD also gets this); check Banerjee
  // on a(4i) vs a(4i + 200) over i in [1, 10]: max difference is
  // 4*10 - 4*1 - 200 < 0 everywhere -> independent.
  NestFixture f(
      "      do i = 1, 10\n"
      "        x = 1\n"
      "      end do\n");
  LinearForm a = extract_linear(f.sub("4*i"), f.loops);
  LinearForm b = extract_linear(f.sub("4*i + 200"), f.loops);
  EXPECT_EQ(banerjee_carried(a, b, f.loops, f.loops[0]),
            LinearVerdict::NoDependence);
}

TEST(LinearTest, BanerjeeRequiresConstantBounds) {
  NestFixture f(
      "      do i = 1, n\n"
      "        x = 1\n"
      "      end do\n");
  LinearForm a = extract_linear(f.sub("i"), f.loops);
  // Even the trivially-independent same-subscript case fails with symbolic
  // bounds — the 1996-compiler limitation the paper calls out.
  EXPECT_EQ(banerjee_carried(a, a, f.loops, f.loops[0]),
            LinearVerdict::MayDepend);
}

TEST(LinearTest, BanerjeeMultiLevelEqualOuter) {
  // a(i,j) self-dependence carried by inner j: outer '=' plus inner '<'
  // over distinct columns cannot collide.
  NestFixture f(
      "      do i = 1, 8\n"
      "        do j = 1, 8\n"
      "          x = 1\n"
      "        end do\n"
      "      end do\n");
  LinearForm a = extract_linear(f.sub("10*i + j"), f.loops);
  EXPECT_EQ(banerjee_carried(a, a, f.loops, f.loops[1]),
            LinearVerdict::NoDependence);
  EXPECT_EQ(banerjee_carried(a, a, f.loops, f.loops[0]),
            LinearVerdict::NoDependence);
}

TEST(LinearTest, BanerjeeAliasedRowsCollide) {
  // a(8*i + j) with j range [1, 16] overlapping rows: dependence possible
  // carried by i.
  NestFixture f(
      "      do i = 1, 8\n"
      "        do j = 1, 16\n"
      "          x = 1\n"
      "        end do\n"
      "      end do\n");
  LinearForm a = extract_linear(f.sub("8*i + j"), f.loops);
  EXPECT_EQ(banerjee_carried(a, a, f.loops, f.loops[0]),
            LinearVerdict::MayDepend);
}

}  // namespace
}  // namespace polaris

namespace polaris {
namespace {

TEST(LinearTest, StrongSivSymbolicBounds) {
  NestFixture f(
      "      do i = 1, n\n"
      "        x = 1\n"
      "      end do\n");
  LinearForm a = extract_linear(f.sub("i"), f.loops);
  LinearForm b = extract_linear(f.sub("i + 1"), f.loops);
  LinearForm c = extract_linear(f.sub("2*i + 1"), f.loops);
  LinearForm two_i = extract_linear(f.sub("2*i"), f.loops);
  // Same subscript: only same-iteration reuse.
  EXPECT_EQ(siv_carried(a, a, f.loops, f.loops[0]),
            LinearVerdict::NoDependence);
  // Distance 1: genuinely carried.
  EXPECT_EQ(siv_carried(a, b, f.loops, f.loops[0]),
            LinearVerdict::MayDepend);
  // 2i vs 2i+1: odd/even, non-divisible distance.
  EXPECT_EQ(siv_carried(two_i, c, f.loops, f.loops[0]),
            LinearVerdict::NoDependence);
}

TEST(LinearTest, StrongSivRejectsOtherIndices) {
  NestFixture f(
      "      do i = 1, n\n"
      "        do j = 1, m\n"
      "          x = 1\n"
      "        end do\n"
      "      end do\n");
  LinearForm a = extract_linear(f.sub("i + j"), f.loops);
  EXPECT_EQ(siv_carried(a, a, f.loops, f.loops[0]),
            LinearVerdict::MayDepend);
}

}  // namespace
}  // namespace polaris
