// Range test validation on the paper's own loop nests (Figures 2 and 3).
#include "dep/rangetest.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace polaris {
namespace {

struct AccessFixture {
  std::unique_ptr<Program> prog;
  ProgramUnit* unit;
  std::vector<DoStmt*> loops;
  SymbolMap<std::vector<ArrayAccess>> accesses;

  AccessFixture(const std::string& src, int outer_loop_index = 0)
      : prog(parse_program(src)) {
    unit = prog->main();
    loops = unit->stmts().loops();
    accesses = collect_array_accesses(loops[static_cast<size_t>(
        outer_loop_index)]);
  }

  const std::vector<ArrayAccess>& of(const std::string& array) {
    Symbol* s = unit->symtab().lookup(array);
    p_assert(s != nullptr);
    return accesses.at(s);
  }
};

Options polaris_opts() { return Options::polaris(); }

TEST(RangeTestTest, SimpleInjectiveSubscript) {
  AccessFixture f(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, n\n"
      "        a(i) = 1.0\n"
      "      end do\n"
      "      end\n");
  RangeTest rt(polaris_opts());
  const auto& acc = f.of("a");
  ASSERT_EQ(acc.size(), 1u);
  EXPECT_TRUE(rt.independent(f.loops[0], acc[0], acc[0]));
}

TEST(RangeTestTest, OverlappingWritesNotProven) {
  AccessFixture f(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, n\n"
      "        a(i) = a(i + 1)\n"
      "      end do\n"
      "      end\n");
  RangeTest rt(polaris_opts());
  const auto& acc = f.of("a");
  ASSERT_EQ(acc.size(), 2u);
  // a(i) written, a(i+1) read: iteration i+1 writes what i read.
  EXPECT_FALSE(rt.independent(f.loops[0], acc[0], acc[1]));
}

TEST(RangeTestTest, SymbolicStrideWithPositiveWidthFact) {
  // a(n*i + j), j in [1, n]: rows do not overlap given n >= 1.
  AccessFixture f(
      "      program t\n"
      "      real a(10000)\n"
      "      do i = 0, m - 1\n"
      "        do j = 1, n\n"
      "          a(n*i + j) = 1.0\n"
      "        end do\n"
      "      end do\n"
      "      end\n");
  RangeTest rt(polaris_opts());
  const auto& acc = f.of("a");
  ASSERT_EQ(acc.size(), 1u);
  EXPECT_TRUE(rt.independent(f.loops[0], acc[0], acc[0]));
  EXPECT_TRUE(rt.independent(f.loops[1], acc[0], acc[0]));
}

TEST(RangeTestTest, TrfdFigure2AllLoopsIndependent) {
  // The paper's central example: the OLDA/100 nest after induction
  // substitution.  All three loops carry no dependence.
  AccessFixture f(
      "      program trfd\n"
      "      real a(100000)\n"
      "      do i = 0, m - 1\n"
      "        do j = 0, n - 1\n"
      "          do k = 0, j - 1\n"
      "            a(k + 1 + (i*(n**2 + n) + j**2 - j)/2) = 1.0\n"
      "          end do\n"
      "        end do\n"
      "      end do\n"
      "      end\n");
  RangeTest rt(polaris_opts());
  const auto& acc = f.of("a");
  ASSERT_EQ(acc.size(), 1u);
  EXPECT_TRUE(rt.independent(f.loops[0], acc[0], acc[0]))
      << "outermost (i) loop";
  EXPECT_TRUE(rt.independent(f.loops[1], acc[0], acc[0])) << "middle (j)";
  EXPECT_TRUE(rt.independent(f.loops[2], acc[0], acc[0])) << "inner (k)";
}

TEST(RangeTestTest, OceanFigure3NeedsPermutation) {
  // FTRVMT/109 simplified: nonlinear term 258*x*j; the outer (k) loop's
  // proof requires fixing the middle (j) loop — the paper's loop swap.
  AccessFixture f(
      "      program ocean\n"
      "      real a(1000000)\n"
      "      integer x, z(100)\n"
      "      do k = 0, x - 1\n"
      "        do j = 0, z(k)\n"
      "          do i = 0, 128\n"
      "            a(258*x*j + 129*k + i + 1) = 1.0\n"
      "            a(258*x*j + 129*k + i + 1 + 129*x) = 2.0\n"
      "          end do\n"
      "        end do\n"
      "      end do\n"
      "      end\n");
  RangeTest rt(polaris_opts());
  const auto& acc = f.of("a");
  ASSERT_EQ(acc.size(), 2u);
  for (size_t p = 0; p < 2; ++p) {
    for (size_t q = 0; q < 2; ++q) {
      EXPECT_TRUE(rt.independent(f.loops[0], acc[p], acc[q]))
          << "outer k loop, pair " << p << "," << q;
      EXPECT_TRUE(rt.independent(f.loops[1], acc[p], acc[q]))
          << "middle j loop, pair " << p << "," << q;
      EXPECT_TRUE(rt.independent(f.loops[2], acc[p], acc[q]))
          << "inner i loop, pair " << p << "," << q;
    }
  }
}

TEST(RangeTestTest, DecreasingSubscripts) {
  AccessFixture f(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, n\n"
      "        a(n - i + 1) = 1.0\n"
      "      end do\n"
      "      end\n");
  RangeTest rt(polaris_opts());
  const auto& acc = f.of("a");
  EXPECT_TRUE(rt.independent(f.loops[0], acc[0], acc[0]));
}

TEST(RangeTestTest, NegativeStepLoop) {
  AccessFixture f(
      "      program t\n"
      "      real a(100)\n"
      "      do i = n, 1, -1\n"
      "        a(i) = 1.0\n"
      "      end do\n"
      "      end\n");
  RangeTest rt(polaris_opts());
  const auto& acc = f.of("a");
  EXPECT_TRUE(rt.independent(f.loops[0], acc[0], acc[0]));
}

TEST(RangeTestTest, WholeRangeDisjointness) {
  // Write region [1, n], read region [n+1, 2n]: no dependence regardless
  // of iteration order.
  AccessFixture f(
      "      program t\n"
      "      real a(1000)\n"
      "      do i = 1, n\n"
      "        a(i) = a(i + n)\n"
      "      end do\n"
      "      end\n");
  RangeTest rt(polaris_opts());
  const auto& acc = f.of("a");
  ASSERT_EQ(acc.size(), 2u);
  EXPECT_TRUE(rt.independent(f.loops[0], acc[0], acc[1]));
}

TEST(RangeTestTest, TwoDimensionalPerDimension) {
  // a(i, j): the i dimension alone proves independence for the i loop.
  AccessFixture f(
      "      program t\n"
      "      real a(100, 100)\n"
      "      do i = 1, n\n"
      "        do j = 1, n\n"
      "          a(i, j) = 1.0\n"
      "        end do\n"
      "      end do\n"
      "      end\n");
  RangeTest rt(polaris_opts());
  const auto& acc = f.of("a");
  EXPECT_TRUE(rt.independent(f.loops[0], acc[0], acc[0]));
  EXPECT_TRUE(rt.independent(f.loops[1], acc[0], acc[0]));
}

TEST(RangeTestTest, SubscriptedSubscriptNotProven) {
  // ind(i) is opaque: the compile-time range test must give up — this is
  // the case the run-time PD test exists for (Section 3.5).
  AccessFixture f(
      "      program t\n"
      "      real a(100)\n"
      "      integer ind(100)\n"
      "      do i = 1, n\n"
      "        a(ind(i)) = 1.0\n"
      "      end do\n"
      "      end\n");
  RangeTest rt(polaris_opts());
  const auto& acc = f.of("a");
  // One write access via ind(i); reads of ind are separate array accesses.
  const ArrayAccess* wa = nullptr;
  for (const auto& ac : acc)
    if (ac.is_write) wa = &ac;
  ASSERT_NE(wa, nullptr);
  EXPECT_FALSE(rt.independent(f.loops[0], *wa, *wa));
}

TEST(RangeTestTest, CoupledSubscriptsBeyondOneDistanceNotProven) {
  // a(i) = a(i - 2) has a genuine carried dependence; must not be proven.
  AccessFixture f(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 3, n\n"
      "        a(i) = a(i - 2)\n"
      "      end do\n"
      "      end\n");
  RangeTest rt(polaris_opts());
  const auto& acc = f.of("a");
  ASSERT_EQ(acc.size(), 2u);
  EXPECT_FALSE(rt.independent(f.loops[0], acc[0], acc[1]));
}

// --- counter-guided permutation cap (-rangetest-max-permutations=N) --------

const char* kOceanSource =
    "      program ocean\n"
    "      real a(1000000)\n"
    "      integer x, z(100)\n"
    "      do k = 0, x - 1\n"
    "        do j = 0, z(k)\n"
    "          do i = 0, 128\n"
    "            a(258*x*j + 129*k + i + 1) = 1.0\n"
    "            a(258*x*j + 129*k + i + 1 + 129*x) = 2.0\n"
    "          end do\n"
    "        end do\n"
    "      end do\n"
    "      end\n";

TEST(RangeTestTest, PermutationCapPreservesFigure3Proofs) {
  // A generous cap proves exactly what exhaustive enumeration proves,
  // including the outer (k) loop that needs the middle (j) loop fixed.
  AccessFixture f(kOceanSource);
  Options opts = polaris_opts();
  opts.rangetest_max_permutations = 16;
  RangeTest rt(opts);
  const auto& acc = f.of("a");
  ASSERT_EQ(acc.size(), 2u);
  for (size_t p = 0; p < 2; ++p)
    for (size_t q = 0; q < 2; ++q)
      for (int l = 0; l < 3; ++l)
        EXPECT_TRUE(rt.independent(f.loops[static_cast<size_t>(l)], acc[p],
                                   acc[q]))
            << "loop " << l << ", pair " << p << "," << q;
}

TEST(RangeTestTest, PermutationCapOneLimitsSearch) {
  // cap=1 with no success history tries only the identity permutation
  // (popcount-0 bucket first): a(i) still proves, but the Figure 3 outer
  // loop — whose proof needs a nonzero mask — does not.
  AccessFixture simple(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, n\n"
      "        a(i) = 1.0\n"
      "      end do\n"
      "      end\n");
  Options opts = polaris_opts();
  opts.rangetest_max_permutations = 1;
  RangeTest rt(opts);
  EXPECT_TRUE(rt.independent(simple.loops[0], simple.of("a")[0],
                             simple.of("a")[0]));

  AccessFixture ocean(kOceanSource);
  const auto& acc = ocean.of("a");
  EXPECT_FALSE(rt.independent(ocean.loops[0], acc[0], acc[0]));
}

TEST(RangeTestTest, SuccessHistoryGuidesBucketOrder) {
  // With recorded popcount-1 successes, the guided search spends its cap
  // on single-loop-fixing masks first: the Figure 3 outer loop now proves
  // under a cap too small for the unbiased order (which burns a slot on
  // the identity mask).
  AnalysisManager am;
  am.note_range_success(1);
  am.note_range_success(1);
  Options opts = polaris_opts();
  opts.rangetest_max_permutations = 2;
  RangeTest rt(opts, &am);
  AccessFixture ocean(kOceanSource);
  const auto& acc = ocean.of("a");
  EXPECT_TRUE(rt.independent(ocean.loops[0], acc[0], acc[0]));
  // The proof itself feeds the histogram, keeping the bucket hot.
  EXPECT_GE(am.range_success_by_popcount()[1], 3u);
}

}  // namespace
}  // namespace polaris
