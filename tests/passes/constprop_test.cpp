#include "passes/constprop.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "parser/printer.h"

namespace polaris {
namespace {

TEST(ConstpropTest, FoldsParameterExpressions) {
  auto p = parse_program(
      "      program t\n"
      "      parameter (n = 10, m = n*4)\n"
      "      real a(m)\n"
      "      do i = 1, m - n\n"
      "        a(i + n - 10) = 1.0\n"
      "      end do\n"
      "      end\n");
  int changed = propagate_constants(*p->main());
  EXPECT_GT(changed, 0);
  std::string src = to_source(*p->main());
  EXPECT_NE(src.find("do i = 1, 30"), std::string::npos);
  EXPECT_NE(src.find("a(i)"), std::string::npos);
}

TEST(ConstpropTest, FoldsConstantConditions) {
  auto p = parse_program(
      "      program t\n"
      "      parameter (k = 3)\n"
      "      if (k .gt. 2) then\n"
      "        x = 1.0\n"
      "      end if\n"
      "      end\n");
  propagate_constants(*p->main());
  auto* ifs = static_cast<IfStmt*>(p->main()->stmts().first());
  EXPECT_EQ(ifs->cond().to_string(), ".true.");
}

TEST(ConstpropTest, IdempotentSecondPass) {
  auto p = parse_program(
      "      program t\n"
      "      parameter (n = 5)\n"
      "      x = n*2 + 1\n"
      "      end\n");
  propagate_constants(*p->main());
  EXPECT_EQ(propagate_constants(*p->main()), 0);
}

TEST(ConstpropTest, LeavesSymbolicExpressionsAlone) {
  auto p = parse_program(
      "      program t\n"
      "      x = y + z\n"
      "      end\n");
  EXPECT_EQ(propagate_constants(*p->main()), 0);
}

}  // namespace
}  // namespace polaris
