#include "passes/reduction.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace polaris {
namespace {

struct Fix {
  std::unique_ptr<Program> prog;
  ProgramUnit* unit;
  Diagnostics diags;
  Options opts = Options::polaris();

  explicit Fix(const std::string& src) : prog(parse_program(src)) {
    unit = prog->main();
  }
  std::vector<RecognizedReduction> run(int loop_index = 0) {
    return recognize_reductions(
        unit->stmts().loops()[static_cast<size_t>(loop_index)], opts, diags);
  }
};

TEST(ReductionTest, ScalarSum) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      s = 0.0\n"
      "      do i = 1, 100\n"
      "        s = s + a(i)\n"
      "      end do\n"
      "      end\n");
  auto rs = f.run();
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0].var->name(), "s");
  EXPECT_EQ(rs[0].op, ReductionKind::Sum);
  EXPECT_FALSE(rs[0].histogram);
  EXPECT_EQ(rs[0].stmts[0]->reduction_flag, ReductionKind::Sum);
}

TEST(ReductionTest, CommutedAndSubtractedForms) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, 100\n"
      "        s = a(i) + s\n"
      "        t = t - a(i)\n"
      "      end do\n"
      "      end\n");
  auto rs = f.run();
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs[0].op, ReductionKind::Sum);
  EXPECT_EQ(rs[1].op, ReductionKind::Sum);
}

TEST(ReductionTest, ProductAndMinMax) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, 100\n"
      "        p = p*a(i)\n"
      "        lo = min(lo, a(i))\n"
      "        hi = max(a(i), hi)\n"
      "      end do\n"
      "      end\n");
  auto rs = f.run();
  ASSERT_EQ(rs.size(), 3u);
  std::map<std::string, ReductionKind> kinds;
  for (const auto& r : rs) kinds[r.var->name()] = r.op;
  EXPECT_EQ(kinds["p"], ReductionKind::Product);
  EXPECT_EQ(kinds["lo"], ReductionKind::Min);
  EXPECT_EQ(kinds["hi"], ReductionKind::Max);
}

TEST(ReductionTest, HistogramReduction) {
  // The paper's histogram form: sums into different elements per
  // iteration through an index array.
  Fix f(
      "      program t\n"
      "      real hist(64), v(1000)\n"
      "      integer bin(1000)\n"
      "      do i = 1, 1000\n"
      "        hist(bin(i)) = hist(bin(i)) + v(i)\n"
      "      end do\n"
      "      end\n");
  auto rs = f.run();
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0].var->name(), "hist");
  EXPECT_TRUE(rs[0].histogram);
}

TEST(ReductionTest, SingleAddressArrayElement) {
  Fix f(
      "      program t\n"
      "      real acc(4), v(100)\n"
      "      do i = 1, 100\n"
      "        acc(2) = acc(2) + v(i)\n"
      "      end do\n"
      "      end\n");
  auto rs = f.run();
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_FALSE(rs[0].histogram);
}

TEST(ReductionTest, HistogramDisabledInBaseline) {
  Fix f(
      "      program t\n"
      "      real hist(64), v(1000)\n"
      "      integer bin(1000)\n"
      "      do i = 1, 1000\n"
      "        hist(bin(i)) = hist(bin(i)) + v(i)\n"
      "      end do\n"
      "      end\n");
  f.opts = Options::baseline();
  auto rs = f.run();
  EXPECT_TRUE(rs.empty());
  EXPECT_TRUE(f.diags.contains("histogram reductions disabled"));
}

TEST(ReductionTest, OtherUsesInvalidate) {
  // s is also read outside the reduction statement: not a reduction.
  Fix f(
      "      program t\n"
      "      real a(100), b(100)\n"
      "      do i = 1, 100\n"
      "        s = s + a(i)\n"
      "        b(i) = s\n"
      "      end do\n"
      "      end\n");
  auto rs = f.run();
  EXPECT_TRUE(rs.empty());
  EXPECT_TRUE(f.diags.contains("invalidated"));
}

TEST(ReductionTest, MultipleStatementsSameAccumulator) {
  Fix f(
      "      program t\n"
      "      real a(100), b(100)\n"
      "      do i = 1, 100\n"
      "        s = s + a(i)\n"
      "        s = s + b(i)\n"
      "      end do\n"
      "      end\n");
  auto rs = f.run();
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0].stmts.size(), 2u);
}

TEST(ReductionTest, MixedOperatorsInvalidate) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, 100\n"
      "        s = s + a(i)\n"
      "        s = s*a(i)\n"
      "      end do\n"
      "      end\n");
  auto rs = f.run();
  EXPECT_TRUE(rs.empty());
}

TEST(ReductionTest, BetaReferencingAccumulatorRejected) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, 100\n"
      "        s = s + s*a(i)\n"
      "      end do\n"
      "      end\n");
  auto rs = f.run();
  EXPECT_TRUE(rs.empty());
}

TEST(ReductionTest, DisabledGlobally) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, 100\n"
      "        s = s + a(i)\n"
      "      end do\n"
      "      end\n");
  f.opts.reductions = false;
  EXPECT_TRUE(f.run().empty());
}

}  // namespace
}  // namespace polaris
