// Inline expansion tests (paper Section 3.1): formal/actual remapping,
// local renaming, common unification, linearization, label isolation,
// RETURN handling — each verified for structure and for semantics (the
// inlined program prints what the original prints).
#include "passes/inliner.h"

#include <gtest/gtest.h>

#include "interp/interp.h"
#include "parser/parser.h"
#include "parser/printer.h"

namespace polaris {
namespace {

struct Fix {
  std::unique_ptr<Program> prog;
  Diagnostics diags;
  Options opts = Options::polaris();
  std::vector<std::string> reference_output;

  explicit Fix(const std::string& src) : prog(parse_program(src)) {
    auto ref = parse_program(src);
    try {
      reference_output = run_program(*ref, MachineConfig{}).output;
    } catch (const InternalError&) {
      // Deliberately malformed programs (e.g. argument-count mismatch)
      // have no reference execution; equivalence is not checked for them.
    }
  }
  InlineResult run() { return inline_calls(*prog, opts, diags); }
  void expect_equivalent() {
    auto r = run_program(*prog, MachineConfig{});
    EXPECT_EQ(r.output, reference_output);
  }
  int call_count() {
    int n = 0;
    for (Statement* s : prog->main()->stmts())
      if (s->kind() == StmtKind::Call) ++n;
    return n;
  }
};

TEST(InlinerTest, ScalarByReference) {
  Fix f(
      "      program t\n"
      "      x = 1.0\n"
      "      call bump(x)\n"
      "      call bump(x)\n"
      "      print *, x\n"
      "      end\n"
      "      subroutine bump(a)\n"
      "      a = a + 1.0\n"
      "      end\n");
  auto r = f.run();
  EXPECT_EQ(r.expanded, 2);
  EXPECT_EQ(f.call_count(), 0);
  f.expect_equivalent();
}

TEST(InlinerTest, WholeArrayActual) {
  Fix f(
      "      program t\n"
      "      real v(10)\n"
      "      call fill(v, 10)\n"
      "      print *, v(1), v(10)\n"
      "      end\n"
      "      subroutine fill(a, n)\n"
      "      real a(n)\n"
      "      do i = 1, n\n"
      "        a(i) = i*2.0\n"
      "      end do\n"
      "      end\n");
  auto r = f.run();
  EXPECT_EQ(r.expanded, 1);
  f.expect_equivalent();
  // The callee's local i was renamed into the caller.
  EXPECT_NE(f.prog->main()->symtab().lookup("fill_i"), nullptr);
}

TEST(InlinerTest, ExpressionActualGetsTemp) {
  Fix f(
      "      program t\n"
      "      y = 3.0\n"
      "      call show(y*2.0 + 1.0)\n"
      "      end\n"
      "      subroutine show(a)\n"
      "      print *, a\n"
      "      end\n");
  auto r = f.run();
  EXPECT_EQ(r.expanded, 1);
  f.expect_equivalent();
}

TEST(InlinerTest, LinearizationOfNonconformingArray) {
  // 2-D formal mapped onto a 1-D actual: subscripts linearized with the
  // formal's shape (paper: "a formal array must be mapped into an
  // equivalent, linearized version of the actual array").
  Fix f(
      "      program t\n"
      "      real buf(12)\n"
      "      call grid(buf, 3, 4)\n"
      "      print *, buf(1), buf(5), buf(12)\n"
      "      end\n"
      "      subroutine grid(g, nr, nc)\n"
      "      real g(nr, nc)\n"
      "      do j = 1, nc\n"
      "        do i = 1, nr\n"
      "          g(i, j) = i*10.0 + j\n"
      "        end do\n"
      "      end do\n"
      "      end\n");
  auto r = f.run();
  EXPECT_EQ(r.expanded, 1);
  f.expect_equivalent();
  std::string src = to_source(*f.prog->main());
  EXPECT_EQ(src.find("g("), std::string::npos);  // formal gone
}

TEST(InlinerTest, CommonBlocksUnifyByName) {
  Fix f(
      "      program t\n"
      "      common /st/ total\n"
      "      total = 1.0\n"
      "      call add2\n"
      "      print *, total\n"
      "      end\n"
      "      subroutine add2\n"
      "      common /st/ total\n"
      "      total = total + 2.0\n"
      "      end\n");
  auto r = f.run();
  EXPECT_EQ(r.expanded, 1);
  f.expect_equivalent();
}

TEST(InlinerTest, ReturnBecomesBranchToEnd) {
  Fix f(
      "      program t\n"
      "      x = -1.0\n"
      "      call clamp(x)\n"
      "      y = 2.0\n"
      "      call clamp(y)\n"
      "      print *, x, y\n"
      "      end\n"
      "      subroutine clamp(a)\n"
      "      if (a .lt. 0.0) then\n"
      "        a = 0.0\n"
      "        return\n"
      "      end if\n"
      "      a = a*2.0\n"
      "      end\n");
  auto r = f.run();
  EXPECT_EQ(r.expanded, 2);
  f.expect_equivalent();
}

TEST(InlinerTest, NestedCallsExpandTransitively) {
  Fix f(
      "      program t\n"
      "      x = 1.0\n"
      "      call outer(x)\n"
      "      print *, x\n"
      "      end\n"
      "      subroutine outer(a)\n"
      "      a = a + 1.0\n"
      "      call inner(a)\n"
      "      end\n"
      "      subroutine inner(b)\n"
      "      b = b*3.0\n"
      "      end\n");
  auto r = f.run();
  EXPECT_EQ(r.expanded, 2);  // outer, then the exposed inner call
  EXPECT_EQ(f.call_count(), 0);
  f.expect_equivalent();
}

TEST(InlinerTest, LabelsIsolated) {
  Fix f(
      "      program t\n"
      "      goto 10\n"
      "   10 continue\n"
      "      call spin(k)\n"
      "      print *, k\n"
      "      end\n"
      "      subroutine spin(n)\n"
      "      n = 0\n"
      "   10 n = n + 1\n"
      "      if (n .lt. 5) goto 10\n"
      "      end\n");
  auto r = f.run();
  EXPECT_EQ(r.expanded, 1);
  f.expect_equivalent();
}

TEST(InlinerTest, DisabledInBaseline) {
  Fix f(
      "      program t\n"
      "      call sub(x)\n"
      "      print *, x\n"
      "      end\n"
      "      subroutine sub(a)\n"
      "      a = 5.0\n"
      "      end\n");
  f.opts = Options::baseline();
  auto r = f.run();
  EXPECT_EQ(r.expanded, 0);
  EXPECT_EQ(f.call_count(), 1);
}

TEST(InlinerTest, ArgumentMismatchSkippedWithDiagnostic) {
  Fix f(
      "      program t\n"
      "      call sub(x)\n"
      "      print *, x\n"
      "      end\n"
      "      subroutine sub(a, b)\n"
      "      a = b\n"
      "      end\n");
  auto r = f.run();
  EXPECT_EQ(r.expanded, 0);
  EXPECT_EQ(r.skipped, 1);
  EXPECT_TRUE(f.diags.contains("argument count mismatch"));
}

TEST(InlinerTest, InliningEnablesLoopParallelization) {
  // The paper's whole point: interprocedural analysis through expansion.
  Fix f(
      "      program t\n"
      "      real a(800)\n"
      "      do i = 1, 8\n"
      "        call slice(a, i)\n"
      "      end do\n"
      "      print *, a(1), a(800)\n"
      "      end\n"
      "      subroutine slice(a, i)\n"
      "      real a(800)\n"
      "      do j = 1, 100\n"
      "        a((i - 1)*100 + j) = i + j*0.5\n"
      "      end do\n"
      "      end\n");
  f.run();
  f.expect_equivalent();
  std::string src = to_source(*f.prog->main());
  EXPECT_EQ(src.find("call"), std::string::npos);
}

}  // namespace
}  // namespace polaris
