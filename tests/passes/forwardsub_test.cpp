// Forward substitution tests: subscripts written through scalar temps
// become analyzable, and every substitution preserves program output.
#include "passes/forwardsub.h"

#include <gtest/gtest.h>

#include "driver/compiler.h"
#include "interp/interp.h"
#include "parser/parser.h"
#include "parser/printer.h"

namespace polaris {
namespace {

struct Fix {
  std::unique_ptr<Program> prog;
  Diagnostics diags;
  Options opts = Options::polaris();
  std::vector<std::string> reference_output;

  explicit Fix(const std::string& src) : prog(parse_program(src)) {
    auto ref = parse_program(src);
    reference_output = run_program(*ref, MachineConfig{}).output;
  }
  int run() { return forward_substitute(*prog->main(), opts, diags); }
  void expect_equivalent() {
    auto r = run_program(*prog, MachineConfig{});
    EXPECT_EQ(r.output, reference_output);
  }
  std::string source() { return to_source(*prog->main()); }
};

TEST(ForwardSubTest, StraightLinePropagation) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, 10\n"
      "        i2 = i*2\n"
      "        a(i2) = 1.0\n"
      "      end do\n"
      "      print *, a(2), a(20)\n"
      "      end\n");
  EXPECT_GT(f.run(), 0);
  std::string src = f.source();
  EXPECT_NE(src.find("a(2*i)"), std::string::npos);
  f.expect_equivalent();
}

TEST(ForwardSubTest, KilledByRedefinitionOfOperand) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, 10\n"
      "        k = i + 1\n"
      "        m = k*2\n"
      "        k = 0\n"
      "        a(m) = k*1.0\n"
      "      end do\n"
      "      print *, a(4)\n"
      "      end\n");
  f.run();
  // a(m)'s substitution must use the OLD k (m = (i+1)*2), while the rhs
  // k*1.0 must use the new k = 0.
  f.expect_equivalent();
  std::string src = f.source();
  EXPECT_NE(src.find("a(2*i+2)"), std::string::npos);
}

TEST(ForwardSubTest, ArrayReadDefsKilledByArrayWrite) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      integer ix(100)\n"
      "      do i = 1, 10\n"
      "        ix(i) = i\n"
      "      end do\n"
      "      do i = 1, 10\n"
      "        m = ix(i)\n"
      "        ix(i) = 11 - i\n"
      "        a(m) = i*1.0\n"
      "      end do\n"
      "      print *, a(3)\n"
      "      end\n");
  f.run();
  // m = ix(i) must NOT be substituted into a(m): ix was overwritten.
  f.expect_equivalent();
  std::string src = f.source();
  EXPECT_NE(src.find("a(m)"), std::string::npos);
}

TEST(ForwardSubTest, ConditionalDefsDoNotEscapeArm) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, 10\n"
      "        m = i\n"
      "        if (i .gt. 5) then\n"
      "          m = i + 50\n"
      "        end if\n"
      "        a(m) = 1.0\n"
      "      end do\n"
      "      print *, a(3), a(56)\n"
      "      end\n");
  f.run();
  f.expect_equivalent();
  std::string src = f.source();
  EXPECT_NE(src.find("a(m)"), std::string::npos);  // must stay symbolic
}

TEST(ForwardSubTest, GotoJoinKillsAvailability) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      i = 0\n"
      "   10 i = i + 1\n"
      "      a(i) = i*1.0\n"
      "      if (i .lt. 100) goto 10\n"
      "      print *, a(50)\n"
      "      end\n");
  f.run();
  f.expect_equivalent();
  std::string src = f.source();
  EXPECT_NE(src.find("i = i+1"), std::string::npos);  // untouched
}

TEST(ForwardSubTest, EnablesDependenceAnalysisThroughTemps) {
  // The butterfly written the natural way, through i1/i2 — only forward
  // substitution lets the range test see the subscripts.
  const char* src =
      "      program fft\n"
      "      parameter (n = 256)\n"
      "      real xr(n)\n"
      "      integer le, i1, i2\n"
      "      do i = 1, n\n"
      "        xr(i) = mod(i, 7)*0.25\n"
      "      end do\n"
      "      le = 1\n"
      "      do l = 1, 5\n"
      "        le = le*2\n"
      "        do j = 0, n/le - 1\n"
      "          do k = 0, le/2 - 1\n"
      "            i1 = j*le + k + 1\n"
      "            i2 = i1 + le/2\n"
      "            xr(i1) = xr(i1) + xr(i2)*0.5\n"
      "            xr(i2) = xr(i1) - xr(i2)*0.25\n"
      "          end do\n"
      "        end do\n"
      "      end do\n"
      "      s = 0.0\n"
      "      do i = 1, n\n"
      "        s = s + xr(i)\n"
      "      end do\n"
      "      print *, s\n"
      "      end\n";
  for (bool fs : {true, false}) {
    Options opts = Options::polaris();
    opts.forward_substitution = fs;
    Compiler compiler(opts);
    CompileReport report;
    auto prog = compiler.compile(src);
    compiler.compile(src, &report);
    bool j_parallel = false;
    for (const LoopReport& lr : report.loops)
      if (lr.depth == 1 && lr.parallel) j_parallel = true;
    EXPECT_EQ(j_parallel, fs)
        << "forward_substitution=" << fs
        << " should decide the block loop's fate";
  }
  // Semantics preserved end to end.
  auto ref = parse_program(src);
  auto ref_run = run_program(*ref, MachineConfig{});
  Compiler compiler(CompilerMode::Polaris);
  auto prog = compiler.compile(src);
  MachineConfig cfg;
  cfg.processors = 8;
  auto run = run_program(*prog, cfg);
  EXPECT_EQ(ref_run.output, run.output);
}

TEST(ForwardSubTest, DisabledByOption) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, 10\n"
      "        i2 = i*2\n"
      "        a(i2) = 1.0\n"
      "      end do\n"
      "      end\n");
  f.opts.forward_substitution = false;
  EXPECT_EQ(f.run(), 0);
}

TEST(ForwardSubTest, SizeCapPreventsBlowup) {
  // Chained definitions would explode; the node cap stops propagation.
  Fix f(
      "      program t\n"
      "      real a(100000)\n"
      "      do i = 1, 3\n"
      "        t1 = i + i + i + i + i + i + i + i\n"
      "        t2 = t1 + t1 + t1\n"
      "        t3 = t2 + t2 + t2\n"
      "        t4 = t3 + t3 + t3\n"
      "        a(t4) = 1.0\n"
      "      end do\n"
      "      print *, a(216)\n"
      "      end\n");
  f.run();
  f.expect_equivalent();
}

}  // namespace
}  // namespace polaris
