// DOALL driver tests: the interplay of reductions, privatization and
// dependence tests, and the speculative fallback.
#include "passes/doall.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace polaris {
namespace {

struct Fix {
  std::unique_ptr<Program> prog;
  Diagnostics diags;
  Options opts = Options::polaris();

  explicit Fix(const std::string& src) : prog(parse_program(src)) {}
  DoallSummary run() { return mark_doall_loops(*prog->main(), opts, diags); }
  DoStmt* loop(size_t i) { return prog->main()->stmts().loops()[i]; }
};

TEST(DoallTest, SimpleParallelLoop) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, 100\n"
      "        a(i) = i*1.0\n"
      "      end do\n"
      "      end\n");
  auto s = f.run();
  EXPECT_EQ(s.parallel, 1);
  EXPECT_TRUE(f.loop(0)->par.is_parallel);
}

TEST(DoallTest, ReductionAnnotated) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, 100\n"
      "        s = s + a(i)\n"
      "      end do\n"
      "      print *, s\n"
      "      end\n");
  auto sum = f.run();
  EXPECT_EQ(sum.parallel, 1);
  ASSERT_EQ(f.loop(0)->par.reductions.size(), 1u);
  EXPECT_EQ(f.loop(0)->par.reductions[0].var->name(), "s");
}

TEST(DoallTest, InjectiveArrayUpdateNotTreatedAsReduction) {
  // v(i) = v(i) + t matches the reduction idiom, but the dependence test
  // proves the subscript injective — the flag must be dropped (paper
  // Section 3.2) so no merge cost is paid.
  Fix f(
      "      program t\n"
      "      real v(100)\n"
      "      do i = 1, 100\n"
      "        v(i) = v(i) + 1.5\n"
      "      end do\n"
      "      end\n");
  auto s = f.run();
  EXPECT_EQ(s.parallel, 1);
  EXPECT_TRUE(f.loop(0)->par.reductions.empty());
  EXPECT_TRUE(f.diags.contains("flag removed"));
  // And the statement's flag itself was cleared.
  auto* a = static_cast<AssignStmt*>(f.loop(0)->next());
  EXPECT_EQ(a->reduction_flag, ReductionKind::None);
}

TEST(DoallTest, HistogramKeptAsReduction) {
  Fix f(
      "      program t\n"
      "      real h(50)\n"
      "      integer b(100)\n"
      "      do i = 1, 100\n"
      "        h(b(i)) = h(b(i)) + 1.0\n"
      "      end do\n"
      "      end\n");
  auto s = f.run();
  EXPECT_EQ(s.parallel, 1);
  ASSERT_EQ(f.loop(0)->par.reductions.size(), 1u);
  EXPECT_TRUE(f.loop(0)->par.reductions[0].histogram);
}

TEST(DoallTest, ScalarRecurrenceBlocks) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, 100\n"
      "        x = x*0.5 + a(i)\n"
      "        a(i) = x\n"
      "      end do\n"
      "      end\n");
  auto s = f.run();
  EXPECT_EQ(s.parallel, 0);
  EXPECT_NE(f.loop(0)->par.serial_reason.find("scalar"), std::string::npos);
}

TEST(DoallTest, IrregularFlowBlocks) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, 100\n"
      "        a(i) = 1.0\n"
      "        if (a(i) .gt. 0.5) goto 10\n"
      "      end do\n"
      "   10 continue\n"
      "      end\n");
  auto s = f.run();
  EXPECT_EQ(s.parallel, 0);
  EXPECT_NE(f.loop(0)->par.serial_reason.find("irregular"),
            std::string::npos);
}

TEST(DoallTest, CallBlocksWithoutInlining) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, 100\n"
      "        call touch(a, i)\n"
      "      end do\n"
      "      end\n"
      "      subroutine touch(a, i)\n"
      "      real a(100)\n"
      "      a(i) = 1.0\n"
      "      end\n");
  auto s = f.run();
  EXPECT_EQ(s.parallel, 0);
  EXPECT_NE(f.loop(0)->par.serial_reason.find("call"), std::string::npos);
}

TEST(DoallTest, IoBlocks) {
  Fix f(
      "      program t\n"
      "      do i = 1, 10\n"
      "        print *, i\n"
      "      end do\n"
      "      end\n");
  auto s = f.run();
  EXPECT_EQ(s.parallel, 0);
}

TEST(DoallTest, SpeculativeMarkingInnermostOnly) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      integer idx(100)\n"
      "      do s = 1, 5\n"
      "        do i = 1, 100\n"
      "          a(idx(i)) = i*1.0\n"
      "        end do\n"
      "      end do\n"
      "      print *, a(1)\n"
      "      end\n");
  f.opts.runtime_pd_test = true;
  auto sum = f.run();
  EXPECT_EQ(sum.speculative, 1);
  EXPECT_FALSE(f.loop(0)->par.speculative);  // outer s loop: no
  EXPECT_TRUE(f.loop(1)->par.speculative);   // inner i loop: yes
  ASSERT_EQ(f.loop(1)->par.speculative_arrays.size(), 1u);
  EXPECT_EQ(f.loop(1)->par.speculative_arrays[0]->name(), "a");
}

TEST(DoallTest, SpeculationDisabledByDefault) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      integer idx(100)\n"
      "      do i = 1, 100\n"
      "        a(idx(i)) = i*1.0\n"
      "      end do\n"
      "      print *, a(1)\n"
      "      end\n");
  auto s = f.run();
  EXPECT_EQ(s.speculative, 0);
  EXPECT_FALSE(f.loop(0)->par.speculative);
}

TEST(DoallTest, PrivateVarsRecorded) {
  Fix f(
      "      program t\n"
      "      real a(100), w(10)\n"
      "      do i = 1, 100\n"
      "        t = i*0.5\n"
      "        do j = 1, 10\n"
      "          w(j) = t + j\n"
      "        end do\n"
      "        a(i) = w(1) + w(10)\n"
      "      end do\n"
      "      end\n");
  auto s = f.run();
  EXPECT_GE(s.parallel, 1);
  const auto& priv = f.loop(0)->par.private_vars;
  auto has = [&](const char* n) {
    for (Symbol* sym : priv)
      if (sym->name() == n) return true;
    return false;
  };
  EXPECT_TRUE(has("t"));
  EXPECT_TRUE(has("j"));
  EXPECT_TRUE(has("w"));
}

}  // namespace
}  // namespace polaris
