// Loop normalization tests: constant-step loops become unit-step with the
// index reconstructed; Fortran's final-index semantics preserved.
#include "passes/normalize.h"

#include <gtest/gtest.h>

#include "driver/compiler.h"
#include "interp/interp.h"
#include "parser/parser.h"
#include "parser/printer.h"

namespace polaris {
namespace {

struct Fix {
  std::unique_ptr<Program> prog;
  Diagnostics diags;
  Options opts = Options::polaris();
  std::vector<std::string> reference_output;

  explicit Fix(const std::string& src) : prog(parse_program(src)) {
    auto ref = parse_program(src);
    reference_output = run_program(*ref, MachineConfig{}).output;
  }
  int run() { return normalize_loops(*prog->main(), opts, diags); }
  void expect_equivalent() {
    auto r = run_program(*prog, MachineConfig{});
    EXPECT_EQ(r.output, reference_output);
  }
  std::string source() { return to_source(*prog->main()); }
};

TEST(NormalizeTest, PositiveStride) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, 99, 2\n"
      "        a(i) = i*1.0\n"
      "      end do\n"
      "      print *, a(1), a(99), a(2)\n"
      "      end\n");
  EXPECT_EQ(f.run(), 1);
  std::string src = f.source();
  EXPECT_NE(src.find("do i_nrm = 0, 49"), std::string::npos);
  EXPECT_NE(src.find("a(2*i_nrm+1)"), std::string::npos);
  f.expect_equivalent();
}

TEST(NormalizeTest, NegativeStride) {
  Fix f(
      "      program t\n"
      "      real a(10)\n"
      "      do i = 10, 1, -1\n"
      "        a(i) = i*1.0\n"
      "      end do\n"
      "      print *, a(1), a(10)\n"
      "      end\n");
  EXPECT_EQ(f.run(), 1);
  f.expect_equivalent();
}

TEST(NormalizeTest, FinalIndexValuePreserved) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, 10, 3\n"
      "        a(i) = 1.0\n"
      "      end do\n"
      "      print *, i\n"  // Fortran: 13 (first value past the limit)
      "      end\n");
  EXPECT_EQ(f.run(), 1);
  ASSERT_EQ(f.reference_output.size(), 1u);
  EXPECT_EQ(f.reference_output[0], "13");
  f.expect_equivalent();
}

TEST(NormalizeTest, ZeroTripLoopFinalValue) {
  Fix f(
      "      program t\n"
      "      real a(10)\n"
      "      do i = 5, 1, 2\n"
      "        a(i) = 1.0\n"
      "      end do\n"
      "      print *, i\n"  // zero trips: index stays at init = 5
      "      end\n");
  f.run();
  ASSERT_EQ(f.reference_output.size(), 1u);
  EXPECT_EQ(f.reference_output[0], "5");
  f.expect_equivalent();
}

TEST(NormalizeTest, UnitStepUntouched) {
  Fix f(
      "      program t\n"
      "      real a(10)\n"
      "      do i = 1, 10\n"
      "        a(i) = 1.0\n"
      "      end do\n"
      "      end\n");
  EXPECT_EQ(f.run(), 0);
}

TEST(NormalizeTest, SymbolicStepUntouched) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      k = 2\n"
      "      do i = 1, 99, k\n"
      "        a(i) = 1.0\n"
      "      end do\n"
      "      end\n");
  EXPECT_EQ(f.run(), 0);
}

TEST(NormalizeTest, BoundClobberedInBodySkipped) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      n = 50\n"
      "      do i = 1, n, 2\n"
      "        a(i) = 1.0\n"
      "        n = n - 1\n"
      "      end do\n"
      "      print *, n\n"
      "      end\n");
  EXPECT_EQ(f.run(), 0);  // n modified in body: unsafe to substitute
  f.expect_equivalent();
}

TEST(NormalizeTest, EnablesParallelizationOfStridedLoop) {
  // a(i) with stride 2 and symbolic upper bound: after normalization the
  // subscript is 2*i_nrm + 1 and the strong-SIV/range tests apply.
  const char* src =
      "      program t\n"
      "      parameter (n = 999)\n"
      "      real a(n)\n"
      "      do i = 1, n, 2\n"
      "        a(i) = i*0.5\n"
      "      end do\n"
      "      s = 0.0\n"
      "      do i = 1, n\n"
      "        s = s + a(i)\n"
      "      end do\n"
      "      print *, s\n"
      "      end\n";
  Compiler compiler(CompilerMode::Polaris);
  CompileReport report;
  auto prog = compiler.compile(src, &report);
  bool strided_parallel = false;
  for (const LoopReport& lr : report.loops)
    if (lr.parallel) strided_parallel = true;
  EXPECT_TRUE(strided_parallel);

  auto ref = parse_program(src);
  auto ref_run = run_program(*ref, MachineConfig{});
  MachineConfig cfg;
  cfg.processors = 8;
  auto run = run_program(*prog, cfg);
  EXPECT_EQ(ref_run.output, run.output);
}

TEST(NormalizeTest, NestedStridedLoops) {
  Fix f(
      "      program t\n"
      "      real g(30,30)\n"
      "      do i = 2, 30, 2\n"
      "        do j = 30, 3, -3\n"
      "          g(i,j) = i*10.0 + j\n"
      "        end do\n"
      "      end do\n"
      "      print *, g(2,30), g(30,3), g(16,15)\n"
      "      end\n");
  EXPECT_EQ(f.run(), 2);
  f.expect_equivalent();
}

}  // namespace
}  // namespace polaris
