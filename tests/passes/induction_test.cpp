// Induction variable substitution tests, including the paper's Figure 1
// (cascaded inductions in a triangular nest) and Figure 2 (TRFD OLDA).
#include "passes/induction.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "parser/printer.h"
#include "symbolic/poly.h"

namespace polaris {
namespace {

struct Fix {
  std::unique_ptr<Program> prog;
  ProgramUnit* unit;
  Diagnostics diags;
  Options opts = Options::polaris();

  explicit Fix(const std::string& src) : prog(parse_program(src)) {
    unit = prog->main();
  }
  InductionResult run() {
    return substitute_inductions(*unit, opts, diags);
  }
  std::string source() { return to_source(*unit); }
  int count_assigns_to(const std::string& name) {
    int n = 0;
    Symbol* s = unit->symtab().lookup(name);
    for (Statement* st : unit->stmts()) {
      if (st->kind() == StmtKind::Assign &&
          static_cast<AssignStmt*>(st)->target() == s &&
          static_cast<AssignStmt*>(st)->lhs().kind() == ExprKind::VarRef)
        ++n;
    }
    return n;
  }
};

TEST(InductionTest, SimpleCounter) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      k = 0\n"
      "      do i = 1, n\n"
      "        k = k + 1\n"
      "        a(k) = 1.0\n"
      "      end do\n"
      "      end\n");
  auto r = f.run();
  EXPECT_EQ(r.substituted, 1);
  // The recurrence statement is gone; the use is closed-form.
  std::string src = f.source();
  EXPECT_EQ(src.find("k = k+1"), std::string::npos);
  EXPECT_NE(src.find("a(k+i)"), std::string::npos);
}

TEST(InductionTest, LastValueWhenLiveOut) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      k = 0\n"
      "      do i = 1, 10\n"
      "        k = k + 2\n"
      "        a(k) = 1.0\n"
      "      end do\n"
      "      m = k\n"
      "      end\n");
  auto r = f.run();
  EXPECT_EQ(r.substituted, 1);
  std::string src = f.source();
  // A last-value assignment k = k + 20 appears after the loop.
  EXPECT_NE(src.find("k = k+20"), std::string::npos);
}

TEST(InductionTest, NoLastValueWhenDead) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      k = 0\n"
      "      do i = 1, 10\n"
      "        k = k + 1\n"
      "        a(k) = 1.0\n"
      "      end do\n"
      "      k = 0\n"
      "      end\n");
  f.run();
  // Exactly the two original scalar assignments remain (init + kill).
  EXPECT_EQ(f.count_assigns_to("k"), 2);
}

TEST(InductionTest, TriangularCascadedFigure1) {
  // The paper's Figure 1: K1 incremented per outer iteration, K2 cascaded
  // on K1 inside a triangular inner loop.
  Fix f(
      "      program fig1\n"
      "      real a(10000)\n"
      "      integer k1, k2\n"
      "      k1 = 0\n"
      "      k2 = 0\n"
      "      do i = 1, n\n"
      "        k1 = k1 + 1\n"
      "        do j = 1, i\n"
      "          k2 = k2 + k1\n"
      "          a(k2) = 1.0\n"
      "        end do\n"
      "      end do\n"
      "      end\n");
  auto r = f.run();
  EXPECT_EQ(r.substituted, 2);
  std::string src = f.source();
  EXPECT_EQ(src.find("k2 = k2"), std::string::npos);
  EXPECT_EQ(src.find("k1 = k1"), std::string::npos);

  // Verify the closed form numerically against the recurrence.
  DoStmt* inner = f.unit->stmts().loops()[1];
  Statement* store = inner->next();
  ASSERT_EQ(store->kind(), StmtKind::Assign);
  const auto& lhs = static_cast<const AssignStmt*>(store)->lhs();
  ASSERT_EQ(lhs.kind(), ExprKind::ArrayRef);
  Polynomial sub = Polynomial::from_expr(
      *static_cast<const ArrayRef&>(lhs).subscripts()[0]);
  auto atom = [&](const char* name) {
    return AtomTable::current().intern_symbol(
        f.unit->symtab().lookup(name));
  };
  std::int64_t k1 = 0, k2 = 0;
  for (std::int64_t i = 1; i <= 8; ++i) {
    k1 += 1;
    for (std::int64_t j = 1; j <= i; ++j) {
      k2 += k1;
      Polynomial v =
          sub.substitute(atom("i"), Polynomial::constant(Rational(i)))
              .substitute(atom("j"), Polynomial::constant(Rational(j)))
              .substitute(atom("k1"), Polynomial::constant(Rational(0)))
              .substitute(atom("k2"), Polynomial::constant(Rational(0)));
      ASSERT_TRUE(v.is_constant());
      EXPECT_EQ(v.constant_value(), Rational(k2)) << "i=" << i << " j=" << j;
    }
  }
}

TEST(InductionTest, TrfdFigure2ClosedForm) {
  // Figure 2: X = X + 1 inside the triangular (j,k) nest plus the outer
  // accumulator X0; after substitution the subscript is the paper's
  // (i*(n^2+n) + j^2 - j)/2 + k + 1 form (with our loops 0-based).
  Fix f(
      "      program trfd\n"
      "      real a(100000)\n"
      "      integer x, x0\n"
      "      x0 = 0\n"
      "      do i = 0, m - 1\n"
      "        x = x0\n"
      "        do j = 0, n - 1\n"
      "          do k = 0, j - 1\n"
      "            x = x + 1\n"
      "            a(x) = 1.0\n"
      "          end do\n"
      "        end do\n"
      "        x0 = x0 + (n**2 + n)/2\n"
      "      end do\n"
      "      end\n");
  // x is not a pure induction (x = x0 reassigns it); but x0 is.  Polaris
  // handles this by substituting x0 first; x then becomes an induction in
  // a second round after copy propagation.  Our pass handles the combined
  // form when x0 is substituted and x's reassignment blocks it — verify
  // x0 substitution at least fires.
  auto r = f.run();
  EXPECT_GE(r.substituted, 1);
  std::string src = f.source();
  EXPECT_EQ(src.find("x0 = x0"), std::string::npos);
}

TEST(InductionTest, ConditionalIncrementRejected) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      k = 0\n"
      "      do i = 1, n\n"
      "        if (i .gt. 5) then\n"
      "          k = k + 1\n"
      "        end if\n"
      "        a(i) = k\n"
      "      end do\n"
      "      end\n");
  auto r = f.run();
  EXPECT_EQ(r.substituted, 0);
  EXPECT_EQ(r.rejected, 1);
  EXPECT_TRUE(f.diags.contains("conditional increment"));
}

TEST(InductionTest, NonInvariantIncrementRejected) {
  // m is a geometric induction (rewritten via a counter); k's increment
  // then hides the counter inside an exponential atom, which the
  // polynomial summation cannot handle — k must stay a recurrence.
  Fix f(
      "      program t\n"
      "      real a(100), b(100)\n"
      "      k = 0\n"
      "      do i = 1, n\n"
      "        k = k + m\n"
      "        m = m*2\n"
      "        a(i) = k\n"
      "      end do\n"
      "      end\n");
  auto r = f.run();
  EXPECT_EQ(r.substituted, 2);  // m's rewrite + its counter
  EXPECT_TRUE(f.diags.contains("not invariant"));
  // k must remain a self-recurrence inside the loop.
  Symbol* k = f.unit->symtab().lookup("k");
  bool recurrence = false;
  for (Statement* s : f.unit->stmts()) {
    if (s->kind() != StmtKind::Assign || s->outer() == nullptr) continue;
    auto* a = static_cast<AssignStmt*>(s);
    if (a->lhs().kind() == ExprKind::VarRef && a->target() == k &&
        a->rhs().references(k))
      recurrence = true;
  }
  EXPECT_TRUE(recurrence) << "k must remain a recurrence:\n" << f.source();
}

TEST(InductionTest, TrulyNonInvariantIncrementRejected) {
  // m is modified by a non-induction assignment: k cannot be summed.
  Fix f(
      "      program t\n"
      "      real a(100), b(100)\n"
      "      k = 0\n"
      "      do i = 1, n\n"
      "        k = k + m\n"
      "        m = b(i)*2.0\n"
      "        a(i) = k\n"
      "      end do\n"
      "      end\n");
  auto r = f.run();
  EXPECT_EQ(r.substituted, 0);
  EXPECT_TRUE(f.diags.contains("not invariant"));
}

TEST(InductionTest, MixedDefsRejected) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, n\n"
      "        k = k + 1\n"
      "        k = i*2\n"
      "        a(i) = k\n"
      "      end do\n"
      "      end\n");
  auto r = f.run();
  EXPECT_EQ(r.substituted, 0);
}

TEST(InductionTest, CascadedDisabledInBaseline) {
  Fix f(
      "      program t\n"
      "      real a(10000)\n"
      "      integer k1, k2\n"
      "      k1 = 0\n"
      "      k2 = 0\n"
      "      do i = 1, n\n"
      "        k1 = k1 + 1\n"
      "        k2 = k2 + k1\n"
      "        a(k2) = 1.0\n"
      "      end do\n"
      "      end\n");
  f.opts = Options::baseline();
  auto r = f.run();
  // k2 cascades on k1: rejected in baseline mode; k1 alone is simple...
  // but k1 is referenced by k2's (still present) increment, so k1 must
  // stay as well for correctness — the pass substitutes only safe sets.
  EXPECT_TRUE(f.diags.contains("cascaded induction disabled"));
  (void)r;
}

TEST(InductionTest, SemanticsPreservedNumerically) {
  // Compare closed forms against a reference recurrence execution.
  Fix f(
      "      program t\n"
      "      real a(1000)\n"
      "      k = 0\n"
      "      do i = 1, 10\n"
      "        do j = 1, i\n"
      "          k = k + 1\n"
      "          a(k) = 1.0\n"
      "        end do\n"
      "      end do\n"
      "      end\n");
  auto r = f.run();
  ASSERT_EQ(r.substituted, 1);
  // Closed form at (i, j): k = j + (i-1)i/2; check textually via print
  // and numerically by evaluating the polynomial for sampled (i, j).
  DoStmt* inner = f.unit->stmts().loops()[1];
  Statement* store = inner->next();
  ASSERT_EQ(store->kind(), StmtKind::Assign);
  const auto& lhs = static_cast<const AssignStmt*>(store)->lhs();
  ASSERT_EQ(lhs.kind(), ExprKind::ArrayRef);
  Polynomial sub = Polynomial::from_expr(
      *static_cast<const ArrayRef&>(lhs).subscripts()[0]);
  AtomId ai = AtomTable::current().intern_symbol(
      f.unit->symtab().lookup("i"));
  AtomId aj = AtomTable::current().intern_symbol(
      f.unit->symtab().lookup("j"));
  AtomId ak = AtomTable::current().intern_symbol(
      f.unit->symtab().lookup("k"));
  std::int64_t expect = 0;
  for (std::int64_t i = 1; i <= 10; ++i) {
    for (std::int64_t j = 1; j <= i; ++j) {
      ++expect;
      Polynomial v = sub.substitute(ai, Polynomial::constant(Rational(i)))
                         .substitute(aj, Polynomial::constant(Rational(j)))
                         .substitute(ak, Polynomial::constant(Rational(0)));
      ASSERT_TRUE(v.is_constant());
      EXPECT_EQ(v.constant_value(), Rational(expect))
          << "i=" << i << " j=" << j;
    }
  }
}

}  // namespace
}  // namespace polaris
