// Multiplicative (geometric) induction variables (paper Section 3.2: "
// multiplicative inductions are solved as well").  K = K*c recurrences are
// rewritten through a counter, closed-formed by the additive solver, and
// verified semantically.
#include <gtest/gtest.h>

#include "driver/compiler.h"
#include "interp/interp.h"
#include "parser/parser.h"
#include "parser/printer.h"
#include "passes/induction.h"

namespace polaris {
namespace {

struct Fix {
  std::unique_ptr<Program> prog;
  Diagnostics diags;
  Options opts = Options::polaris();
  std::vector<std::string> reference_output;

  explicit Fix(const std::string& src) : prog(parse_program(src)) {
    auto ref = parse_program(src);
    reference_output = run_program(*ref, MachineConfig{}).output;
  }
  InductionResult run() {
    return substitute_inductions(*prog->main(), opts, diags);
  }
  void expect_equivalent() {
    auto r = run_program(*prog, MachineConfig{});
    EXPECT_EQ(r.output, reference_output);
  }
  std::string source() { return to_source(*prog->main()); }
};

TEST(MultiplicativeTest, SimpleGeometricSeries) {
  Fix f(
      "      program t\n"
      "      real a(12)\n"
      "      integer k\n"
      "      k = 1\n"
      "      do i = 1, 12\n"
      "        k = k*2\n"
      "        a(i) = k*0.001\n"
      "      end do\n"
      "      print *, a(1), a(12)\n"
      "      end\n");
  auto r = f.run();
  EXPECT_GE(r.substituted, 2);  // the rewrite + the counter
  std::string src = f.source();
  EXPECT_EQ(src.find("k = k*2"), std::string::npos);
  EXPECT_NE(src.find("2**"), std::string::npos);
  f.expect_equivalent();
}

TEST(MultiplicativeTest, LastValueWhenLiveOut) {
  Fix f(
      "      program t\n"
      "      real a(10)\n"
      "      integer k\n"
      "      k = 3\n"
      "      do i = 1, 5\n"
      "        k = k*2\n"
      "        a(i) = 1.0\n"
      "      end do\n"
      "      print *, k\n"  // 3*2^5 = 96
      "      end\n");
  f.run();
  f.expect_equivalent();
  ASSERT_FALSE(f.reference_output.empty());
  EXPECT_EQ(f.reference_output[0], "96");
}

TEST(MultiplicativeTest, RealFactor) {
  Fix f(
      "      program t\n"
      "      real decay(20)\n"
      "      w = 1.0\n"
      "      do i = 1, 20\n"
      "        w = w*0.5\n"
      "        decay(i) = w\n"
      "      end do\n"
      "      print *, decay(1), decay(20)\n"
      "      end\n");
  f.run();
  f.expect_equivalent();
}

TEST(MultiplicativeTest, MixedAdditiveMultiplicativeRejected) {
  Fix f(
      "      program t\n"
      "      real a(10)\n"
      "      integer k\n"
      "      k = 1\n"
      "      do i = 1, 10\n"
      "        k = k*2\n"
      "        k = k + 1\n"
      "        a(i) = k*0.01\n"
      "      end do\n"
      "      print *, a(10)\n"
      "      end\n");
  auto r = f.run();
  std::string src = f.source();
  EXPECT_NE(src.find("k = k*2"), std::string::npos);  // untouched
  f.expect_equivalent();
  (void)r;
}

TEST(MultiplicativeTest, ConditionalScaleRejected) {
  Fix f(
      "      program t\n"
      "      real a(10)\n"
      "      integer k\n"
      "      k = 1\n"
      "      do i = 1, 10\n"
      "        if (i .gt. 5) then\n"
      "          k = k*2\n"
      "        end if\n"
      "        a(i) = k*0.01\n"
      "      end do\n"
      "      print *, a(10)\n"
      "      end\n");
  f.run();
  std::string src = f.source();
  EXPECT_NE(src.find("k = k*2"), std::string::npos);
  f.expect_equivalent();
}

TEST(MultiplicativeTest, DisabledInBaseline) {
  Fix f(
      "      program t\n"
      "      real a(10)\n"
      "      integer k\n"
      "      k = 1\n"
      "      do i = 1, 10\n"
      "        k = k*2\n"
      "        a(i) = k*0.01\n"
      "      end do\n"
      "      print *, a(10)\n"
      "      end\n");
  f.opts = Options::baseline();
  f.run();
  std::string src = f.source();
  EXPECT_NE(src.find("k = k*2"), std::string::npos);
  f.expect_equivalent();
}

TEST(MultiplicativeTest, FftStageRecurrenceEndToEnd) {
  // The tfft2-style le = le*2 stage recurrence: after the rewrite the
  // stage loop's only scalar recurrence is the counter, which the
  // additive solver removes; the bounds become exponential expressions
  // the interpreter evaluates exactly.
  const char* src =
      "      program t\n"
      "      parameter (n = 64)\n"
      "      real xr(n)\n"
      "      integer le\n"
      "      do i = 1, n\n"
      "        xr(i) = mod(i, 5)*0.5\n"
      "      end do\n"
      "      le = 1\n"
      "      do l = 1, 4\n"
      "        le = le*2\n"
      "        do j = 0, n/le - 1\n"
      "          do k = 0, le/2 - 1\n"
      "            xr(j*le + k + 1) = xr(j*le + k + 1)\n"
      "     &        + xr(j*le + k + 1 + le/2)*0.5\n"
      "          end do\n"
      "        end do\n"
      "      end do\n"
      "      s = 0.0\n"
      "      do i = 1, n\n"
      "        s = s + xr(i)\n"
      "      end do\n"
      "      print *, s\n"
      "      end\n";
  auto ref = parse_program(src);
  auto ref_run = run_program(*ref, MachineConfig{});
  Compiler compiler(CompilerMode::Polaris);
  auto prog = compiler.compile(src);
  MachineConfig cfg;
  cfg.processors = 8;
  auto run = run_program(*prog, cfg);
  EXPECT_EQ(ref_run.output, run.output);
}

}  // namespace
}  // namespace polaris
