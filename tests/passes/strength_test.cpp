// Strength reduction of substituted induction expressions (the paper's
// private-copy scheme for the code-expansion problem of Figure 1/2).
#include "passes/strength.h"

#include <gtest/gtest.h>

#include "driver/compiler.h"
#include "interp/interp.h"
#include "parser/parser.h"
#include "parser/printer.h"

namespace polaris {
namespace {

TEST(StrengthTest, TrfdSubscriptReduced) {
  const char* src =
      "      program trfd\n"
      "      parameter (nv = 24, nmo = 6)\n"
      "      real a(2000)\n"
      "      integer x\n"
      "      x = 0\n"
      "      do i = 0, nmo - 1\n"
      "        do j = 0, nv - 1\n"
      "          do k = 0, j - 1\n"
      "            x = x + 1\n"
      "            a(x) = i*0.5 + j*0.25 + k*0.125\n"
      "          end do\n"
      "        end do\n"
      "      end do\n"
      "      s = 0.0\n"
      "      do i = 1, nmo*(nv*nv - nv)/2\n"
      "        s = s + a(i)\n"
      "      end do\n"
      "      print *, s\n"
      "      end\n";

  Compiler compiler(CompilerMode::Polaris);
  CompileReport report;
  auto prog = compiler.compile(src, &report);
  EXPECT_TRUE(report.diagnostics.contains("induction temporaries"));
  // The innermost body indexes through the temp, not the polynomial.
  std::string out = report.annotated_source;
  EXPECT_NE(out.find("a(isr)"), std::string::npos) << out;
  EXPECT_NE(out.find("isr = isr+1"), std::string::npos) << out;

  // Semantics and serial cost: the reduced program must match the
  // reference output and not be slower than the unreduced one serially.
  auto ref = parse_program(src);
  auto ref_run = run_program(*ref, MachineConfig{});
  auto run1 = run_program(*prog, MachineConfig{});
  EXPECT_EQ(ref_run.output, run1.output);

  Options no_sr = Options::polaris();
  no_sr.strength_reduction = false;
  Compiler plain(no_sr);
  auto prog2 = plain.compile(src);
  auto run2 = run_program(*prog2, MachineConfig{});
  EXPECT_EQ(ref_run.output, run2.output);
  EXPECT_LT(run1.clock.serial, run2.clock.serial)
      << "strength reduction must cut the serial cost";
}

TEST(StrengthTest, TempsArePrivateToTheParallelLoop) {
  const char* src =
      "      program t\n"
      "      real a(4000)\n"
      "      integer x\n"
      "      x = 0\n"
      "      do i = 1, 20\n"
      "        do k = 1, 20\n"
      "          x = x + 1\n"
      "          a(x) = i*0.5 + k\n"
      "        end do\n"
      "      end do\n"
      "      print *, a(1), a(400)\n"
      "      end\n";
  Compiler compiler(CompilerMode::Polaris);
  CompileReport report;
  auto prog = compiler.compile(src, &report);
  // The outer loop is parallel and owns the temp as a private.
  bool temp_private = false;
  for (DoStmt* d : prog->main()->stmts().loops()) {
    if (!d->par.is_parallel) continue;
    for (Symbol* s : d->par.private_vars)
      if (s->name().rfind("isr", 0) == 0) temp_private = true;
  }
  EXPECT_TRUE(temp_private);

  auto ref = parse_program(src);
  auto ref_run = run_program(*ref, MachineConfig{});
  MachineConfig cfg;
  cfg.processors = 8;
  auto run = run_program(*prog, cfg);
  EXPECT_EQ(ref_run.output, run.output);
}

TEST(StrengthTest, CheapSubscriptsLeftAlone) {
  const char* src =
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, 10\n"
      "        do k = 1, 10\n"
      "          a(k + 3) = i*1.0\n"
      "        end do\n"
      "      end do\n"
      "      end\n";
  Compiler compiler(CompilerMode::Polaris);
  CompileReport report;
  compiler.compile(src, &report);
  EXPECT_FALSE(report.diagnostics.contains("induction temporaries"));
}

TEST(StrengthTest, DisabledByOption) {
  const char* src =
      "      program trfd\n"
      "      real a(2000)\n"
      "      integer x\n"
      "      x = 0\n"
      "      do i = 0, 5\n"
      "        do j = 0, 23\n"
      "          do k = 0, j - 1\n"
      "            x = x + 1\n"
      "            a(x) = 1.0\n"
      "          end do\n"
      "        end do\n"
      "      end do\n"
      "      end\n";
  Options opts = Options::polaris();
  opts.strength_reduction = false;
  Compiler compiler(opts);
  CompileReport report;
  compiler.compile(src, &report);
  EXPECT_FALSE(report.diagnostics.contains("induction temporaries"));
}

}  // namespace
}  // namespace polaris
