// Privatization tests, including the paper's Figure 4 (array region with
// GSA query MP >= M*P) and Figure 5 (BDNA gather/compress).
#include "passes/privatization.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "parser/parser.h"

namespace polaris {
namespace {

struct Fix {
  std::unique_ptr<Program> prog;
  ProgramUnit* unit;
  Diagnostics diags;
  Options opts = Options::polaris();

  explicit Fix(const std::string& src) : prog(parse_program(src)) {
    unit = prog->main();
  }
  PrivatizationResult run(int loop_index = 0) {
    return analyze_privatization(
        *unit, unit->stmts().loops()[static_cast<size_t>(loop_index)], opts,
        diags);
  }
  static bool has(const std::vector<Symbol*>& v, const std::string& name) {
    return std::any_of(v.begin(), v.end(), [&](Symbol* s) {
      return s->name() == name;
    });
  }
};

TEST(PrivatizationTest, ScalarTemporary) {
  Fix f(
      "      program t\n"
      "      real a(100), b(100)\n"
      "      do i = 1, 100\n"
      "        r = a(i)*2.0\n"
      "        b(i) = r + 1.0\n"
      "      end do\n"
      "      end\n");
  auto r = f.run();
  EXPECT_TRUE(Fix::has(r.private_scalars, "r"));
  EXPECT_TRUE(r.lastvalue_scalars.empty());
}

TEST(PrivatizationTest, UpwardExposedScalarBlocked) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, 100\n"
      "        a(i) = r\n"
      "        r = a(i) + 1.0\n"
      "      end do\n"
      "      end\n");
  auto r = f.run();
  EXPECT_TRUE(Fix::has(r.blocked, "r"));
  EXPECT_FALSE(Fix::has(r.private_scalars, "r"));
}

TEST(PrivatizationTest, LastValueForLiveOutScalar) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, 100\n"
      "        r = a(i)\n"
      "        a(i) = r*2.0\n"
      "      end do\n"
      "      x = r\n"
      "      end\n");
  auto r = f.run();
  EXPECT_TRUE(Fix::has(r.private_scalars, "r"));
  EXPECT_TRUE(Fix::has(r.lastvalue_scalars, "r"));
}

TEST(PrivatizationTest, ConditionallyAssignedLiveOutBlocked) {
  Fix f(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, 100\n"
      "        if (a(i) .gt. 0.0) then\n"
      "          r = a(i)\n"
      "          a(i) = r + 1.0\n"
      "        end if\n"
      "      end do\n"
      "      x = r\n"
      "      end\n");
  auto r = f.run();
  EXPECT_TRUE(Fix::has(r.blocked, "r"));
  EXPECT_TRUE(f.diags.contains("conditionally assigned"));
}

TEST(PrivatizationTest, InnerLoopIndexIsPrivate) {
  Fix f(
      "      program t\n"
      "      real a(100,100)\n"
      "      do i = 1, 100\n"
      "        do j = 1, 100\n"
      "          a(i,j) = 0.0\n"
      "        end do\n"
      "      end do\n"
      "      end\n");
  auto r = f.run();
  EXPECT_TRUE(Fix::has(r.private_scalars, "j"));
}

TEST(PrivatizationTest, SimpleWorkArray) {
  // w written then read in each iteration: a classic private work array.
  Fix f(
      "      program t\n"
      "      real a(100,100), w(100)\n"
      "      do i = 1, 100\n"
      "        do j = 1, 100\n"
      "          w(j) = a(i,j)*2.0\n"
      "        end do\n"
      "        do k = 1, 100\n"
      "          a(i,k) = w(k) + 1.0\n"
      "        end do\n"
      "      end do\n"
      "      end\n");
  auto r = f.run();
  EXPECT_TRUE(Fix::has(r.private_arrays, "w"));
}

TEST(PrivatizationTest, ReadBeforeWriteArrayBlocked) {
  Fix f(
      "      program t\n"
      "      real a(100,100), w(100)\n"
      "      do i = 1, 100\n"
      "        do k = 1, 100\n"
      "          a(i,k) = w(k)\n"
      "        end do\n"
      "        do j = 1, 100\n"
      "          w(j) = a(i,j)\n"
      "        end do\n"
      "      end do\n"
      "      end\n");
  auto r = f.run();
  EXPECT_TRUE(Fix::has(r.blocked, "w"));
  EXPECT_TRUE(f.diags.contains("not covered"));
}

TEST(PrivatizationTest, PartialCoverageBlocked) {
  // Defines w(1:50) but reads w(1:100).
  Fix f(
      "      program t\n"
      "      real a(100,100), w(100)\n"
      "      do i = 1, 100\n"
      "        do j = 1, 50\n"
      "          w(j) = a(i,j)\n"
      "        end do\n"
      "        do k = 1, 100\n"
      "          a(i,k) = w(k)\n"
      "        end do\n"
      "      end do\n"
      "      end\n");
  auto r = f.run();
  EXPECT_TRUE(Fix::has(r.blocked, "w"));
}

TEST(PrivatizationTest, Figure4GsaQuery) {
  // Paper Figure 4: def region w(1:mp), use region w(1:m*p); coverage
  // needs the global fact MP = M*P, found by GSA backward substitution.
  Fix f(
      "      program t\n"
      "      real a(1000), b(1000), w(1000)\n"
      "      mp = m*p\n"
      "      do i = 1, 10\n"
      "        do j = 1, mp\n"
      "          w(j) = a(j)\n"
      "        end do\n"
      "        do k = 1, m*p\n"
      "          b(k) = b(k) + w(k)\n"
      "        end do\n"
      "      end do\n"
      "      end\n");
  auto r = f.run();
  EXPECT_TRUE(Fix::has(r.private_arrays, "w"));
}

TEST(PrivatizationTest, Figure4FailsWithoutGsa) {
  Fix f(
      "      program t\n"
      "      real a(1000), b(1000), w(1000)\n"
      "      mp = m*p\n"
      "      do i = 1, 10\n"
      "        do j = 1, mp\n"
      "          w(j) = a(j)\n"
      "        end do\n"
      "        do k = 1, m*p\n"
      "          b(k) = b(k) + w(k)\n"
      "        end do\n"
      "      end do\n"
      "      end\n");
  f.opts.gsa_queries = false;
  auto r = f.run();
  EXPECT_TRUE(Fix::has(r.blocked, "w"));
}

TEST(PrivatizationTest, Figure5BdnaGatherCompress) {
  // Paper Figure 5 (BDNA): A defined over (1:i-1), then gathered through
  // the compress-pattern index array IND(1:P) whose values are loop-K
  // indices in [1, i-1].
  Fix f(
      "      program bdna\n"
      "      real x(200,200), y(200,200), a(200)\n"
      "      integer ind(200), p\n"
      "      real r, w, z, rcuts\n"
      "      do i = 2, n\n"
      "        do j = 1, i - 1\n"
      "          ind(j) = 0\n"
      "          a(j) = x(i,j) - y(i,j)\n"
      "          r = a(j) + w\n"
      "          if (r .lt. rcuts) ind(j) = 1\n"
      "        end do\n"
      "        p = 0\n"
      "        do k = 1, i - 1\n"
      "          if (ind(k) .ne. 0) then\n"
      "            p = p + 1\n"
      "            ind(p) = k\n"
      "          end if\n"
      "        end do\n"
      "        do l = 1, p\n"
      "          m = ind(l)\n"
      "          x(i,l) = a(m) + z\n"
      "        end do\n"
      "      end do\n"
      "      end\n");
  auto r = f.run();
  EXPECT_TRUE(Fix::has(r.private_scalars, "r"));
  EXPECT_TRUE(Fix::has(r.private_scalars, "p"));
  EXPECT_TRUE(Fix::has(r.private_scalars, "m"));
  EXPECT_TRUE(Fix::has(r.private_arrays, "ind"));
  EXPECT_TRUE(Fix::has(r.private_arrays, "a"))
      << "the monotonic gather range was not recognized";
}

TEST(PrivatizationTest, LiveOutArrayBlocked) {
  Fix f(
      "      program t\n"
      "      real a(100,100), w(100)\n"
      "      do i = 1, 100\n"
      "        do j = 1, 100\n"
      "          w(j) = a(i,j)\n"
      "        end do\n"
      "        do k = 1, 100\n"
      "          a(i,k) = w(k)\n"
      "        end do\n"
      "      end do\n"
      "      x = w(1)\n"
      "      end\n");
  auto r = f.run();
  EXPECT_TRUE(Fix::has(r.blocked, "w"));
  EXPECT_TRUE(f.diags.contains("live after loop"));
}

TEST(PrivatizationTest, ArrayPrivatizationDisabled) {
  Fix f(
      "      program t\n"
      "      real a(100,100), w(100)\n"
      "      do i = 1, 100\n"
      "        do j = 1, 100\n"
      "          w(j) = a(i,j)\n"
      "        end do\n"
      "        do k = 1, 100\n"
      "          a(i,k) = w(k)\n"
      "        end do\n"
      "      end do\n"
      "      end\n");
  f.opts.array_privatization = false;
  auto r = f.run();
  EXPECT_TRUE(Fix::has(r.blocked, "w"));
}

}  // namespace
}  // namespace polaris

namespace polaris {
namespace {

TEST(PrivatizationTest, GuardConditionEnablesCoverage) {
  // Figure-4 style containment proven from a *control-flow* fact instead
  // of a GSA substitution: the guard if (mp .ge. m*p) dominates the nest.
  Fix f(
      "      program t\n"
      "      real a(1000), b(1000), w(1000)\n"
      "      if (mp .ge. m*p) then\n"
      "        do i = 1, 10\n"
      "          do j = 1, mp\n"
      "            w(j) = a(j)\n"
      "          end do\n"
      "          do k = 1, m*p\n"
      "            b(k) = b(k) + w(k)\n"
      "          end do\n"
      "        end do\n"
      "      end if\n"
      "      end\n");
  f.opts.gsa_queries = false;  // force the proof through the guard fact
  auto r = f.run();
  EXPECT_TRUE(Fix::has(r.private_arrays, "w"));
}

}  // namespace
}  // namespace polaris
