      program badlab
      x = 1.0
123456789012345 continue
      end
