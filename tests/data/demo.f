      program demo
c     a small demonstration kernel: triangular induction + reduction
      real a(5050)
      integer k
      k = 0
      do i = 1, 100
        do j = 1, i
          k = k + 1
          a(k) = i*0.5 + j
        end do
      end do
      s = 0.0
      do i = 1, 5050
        s = s + a(i)
      end do
      print *, s
      end
