#include "symbolic/simplify.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace polaris {
namespace {

class SimplifyTest : public ::testing::Test {
 protected:
  SymbolTable symtab;

  std::string S(const std::string& text) {
    ExprPtr e = parse_expression(text, symtab);
    return simplify(*e)->to_string();
  }
};

TEST_F(SimplifyTest, IntegerCanonicalization) {
  EXPECT_EQ(S("i + 0"), "i");
  EXPECT_EQ(S("i*1"), "i");
  EXPECT_EQ(S("i - i"), "0");
  EXPECT_EQ(S("2*i + 3*i"), "5*i");
  EXPECT_EQ(S("(i + 1)*(i - 1) - i*i"), "-1");
}

TEST_F(SimplifyTest, IntegerConstantFolding) {
  EXPECT_EQ(S("2 + 3*4"), "14");
  EXPECT_EQ(S("7/2"), "3");   // Fortran truncation
  EXPECT_EQ(S("(-7)/2"), "-3");
}

TEST_F(SimplifyTest, IntegerDivisionNotReassociated) {
  // i/2*2 must NOT simplify to i (truncating division).
  std::string s = S("(i/2)*2");
  EXPECT_NE(s, "i");
}

TEST_F(SimplifyTest, FloatIdentities) {
  EXPECT_EQ(S("x + 0.0"), "x");
  EXPECT_EQ(S("x*1.0"), "x");
  EXPECT_EQ(S("1.0*x"), "x");
  EXPECT_EQ(S("x/1.0"), "x");
}

TEST_F(SimplifyTest, FloatIdentityKeepsDoubleType) {
  // Mixed precision: x is REAL (implicit typing) but 0.0d0 makes the
  // operation DOUBLE PRECISION, so returning the bare operand would
  // silently demote the subtree.  The identity must not fire.
  EXPECT_NE(S("x - 0.0d0"), "x");
  EXPECT_NE(S("x*1.0d0"), "x");
  EXPECT_NE(S("1.0d0*x"), "x");
  EXPECT_NE(S("x/1.0d0"), "x");
  // Matching precision folds as before.
  symtab.declare("d", Type::double_precision(), SymbolKind::Variable);
  EXPECT_EQ(S("d - 0.0d0"), "d");
  EXPECT_EQ(S("d*1.0d0"), "d");
  EXPECT_EQ(S("1.0d0*d"), "d");
  EXPECT_EQ(S("d/1.0d0"), "d");
  // Integer operands stay foldable under a floating operation: the value
  // is exact and the surrounding context converts it either way.
  EXPECT_EQ(S("i*1.0"), "i");
  EXPECT_EQ(S("i + 0.0d0"), "i");
}

TEST_F(SimplifyTest, FloatConstantFolding) {
  EXPECT_EQ(S("1.5 + 2.5"), "4.0");
  EXPECT_EQ(S("3.0*2.0"), "6.0");
}

TEST_F(SimplifyTest, FloatNotReassociated) {
  // x + y - y is not simplified for floats (rounding).
  std::string s = S("x + y - y");
  EXPECT_NE(s, "x");
}

TEST_F(SimplifyTest, LogicalFolding) {
  EXPECT_EQ(S(".true. .and. .false."), ".false.");
  EXPECT_EQ(S(".true. .or. .false."), ".true.");
  EXPECT_EQ(S(".not. .true."), ".false.");
}

TEST_F(SimplifyTest, LogicalIdentity) {
  // .true. .and. p -> p
  std::string s = S(".true. .and. i .lt. j");
  EXPECT_EQ(s, "i.lt.j");
}

TEST_F(SimplifyTest, ComparisonFolding) {
  EXPECT_EQ(S("1 .lt. 2"), ".true.");
  EXPECT_EQ(S("i .lt. i"), ".false.");
  EXPECT_EQ(S("i + 1 .gt. i"), ".true.");
  EXPECT_EQ(S("i .le. j"), "i.le.j");  // not provable structurally
}

TEST_F(SimplifyTest, NegationFolding) {
  EXPECT_EQ(S("-(3)"), "-3");
  EXPECT_EQ(S("-(1.5)"), "(-1.5)");
  EXPECT_EQ(S("i + (-1)*j"), "i-j");
}

TEST_F(SimplifyTest, TryFoldInt) {
  std::int64_t v = 0;
  ExprPtr e = parse_expression("3*4 + 5", symtab);
  EXPECT_TRUE(try_fold_int(*e, &v));
  EXPECT_EQ(v, 17);
  ExprPtr f = parse_expression("i + 1", symtab);
  EXPECT_FALSE(try_fold_int(*f, &v));
}

TEST_F(SimplifyTest, SimplifyInsideCalls) {
  EXPECT_EQ(S("max(i + 0, j*1)"), "max(i,j)");
}

TEST_F(SimplifyTest, SimplifyInPlace) {
  ExprPtr e = parse_expression("i + 0", symtab);
  simplify_in_place(e);
  EXPECT_EQ(e->to_string(), "i");
}

}  // namespace
}  // namespace polaris
