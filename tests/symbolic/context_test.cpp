#include "symbolic/context.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace polaris {
namespace {

class ContextTest : public ::testing::Test {
 protected:
  SymbolTable symtab;
  Symbol* i = symtab.declare("i", Type::integer(), SymbolKind::Variable);
  Symbol* n = symtab.declare("n", Type::integer(), SymbolKind::Variable);
  AtomId ai = AtomTable::current().intern_symbol(i);
  AtomId an = AtomTable::current().intern_symbol(n);

  Polynomial P(const std::string& text) {
    ExprPtr e = parse_expression(text, symtab);
    return Polynomial::from_expr(*e);
  }
};

TEST_F(ContextTest, RangeYieldsBounds) {
  FactContext ctx;
  ExprPtr one = parse_expression("1", symtab);
  ExprPtr nn = parse_expression("n", symtab);
  ctx.add_range(i, one.get(), nn.get());
  auto lo = ctx.lower_bounds(ai);
  ASSERT_EQ(lo.size(), 1u);
  EXPECT_TRUE((lo[0] - P("1")).is_zero());
  auto hi = ctx.upper_bounds(ai);
  ASSERT_EQ(hi.size(), 1u);
  EXPECT_TRUE((hi[0] - P("n")).is_zero());
}

TEST_F(ContextTest, LoopAddsTripCountFact) {
  FactContext ctx;
  ExprPtr one = parse_expression("1", symtab);
  ExprPtr nn = parse_expression("n", symtab);
  ctx.add_loop(i, *one, *nn);
  // n's lower bounds: i (from n - i >= 0) and 1 (the trip-count
  // assumption n - 1 >= 0).
  auto lo_n = ctx.lower_bounds(an);
  ASSERT_EQ(lo_n.size(), 2u);
  bool has_one = false;
  for (const Polynomial& b : lo_n)
    if ((b - P("1")).is_zero()) has_one = true;
  EXPECT_TRUE(has_one);
}

TEST_F(ContextTest, ScaledFactsNormalize) {
  // 2i - n >= 0  =>  i >= n/2.
  FactContext ctx;
  ctx.add_ge0(P("2*i - n"));
  auto lo = ctx.lower_bounds(ai);
  ASSERT_EQ(lo.size(), 1u);
  EXPECT_TRUE((lo[0] - P("n")*Polynomial::constant(Rational(1, 2))).is_zero());
  // And the same fact gives n an upper bound 2i.
  auto hi = ctx.upper_bounds(an);
  ASSERT_EQ(hi.size(), 1u);
  EXPECT_TRUE((hi[0] - P("2*i")).is_zero());
}

TEST_F(ContextTest, CompositeMonomialsGiveNoBounds) {
  // n*i - 5 >= 0 has no linear bound for either atom.
  FactContext ctx;
  ctx.add_ge0(P("n*i - 5"));
  EXPECT_TRUE(ctx.lower_bounds(ai).empty());
  EXPECT_TRUE(ctx.lower_bounds(an).empty());
}

TEST_F(ContextTest, ConstantFactsDropped) {
  FactContext ctx;
  ctx.add_ge0(P("5"));
  EXPECT_TRUE(ctx.facts().empty());
}

TEST_F(ContextTest, RanksDefaultZero) {
  FactContext ctx;
  EXPECT_EQ(ctx.rank(ai), 0);
  ctx.set_rank(ai, 3);
  EXPECT_EQ(ctx.rank(ai), 3);
}

TEST_F(ContextTest, MultipleFactsMultipleBounds) {
  FactContext ctx;
  ctx.add_ge0(P("i - 1"));
  ctx.add_ge0(P("i - n"));
  auto lo = ctx.lower_bounds(ai);
  EXPECT_EQ(lo.size(), 2u);
}

}  // namespace
}  // namespace polaris
