// Property test: the canonical polynomial form computes exactly the same
// integer values as direct evaluation, for randomly generated expressions
// over +, -, *, unary minus and small constant powers.  This pins the
// symbolic kernel (the foundation of the range test and the induction
// closed forms) to concrete integer semantics.
#include <gtest/gtest.h>

#include <random>

#include "ir/build.h"
#include "symbolic/poly.h"

namespace polaris {
namespace {

struct Gen {
  std::mt19937 rng;
  SymbolTable symtab;
  std::vector<Symbol*> vars;

  explicit Gen(unsigned seed) : rng(seed) {
    vars.push_back(symtab.declare("i", Type::integer(),
                                  SymbolKind::Variable));
    vars.push_back(symtab.declare("j", Type::integer(),
                                  SymbolKind::Variable));
    vars.push_back(symtab.declare("n", Type::integer(),
                                  SymbolKind::Variable));
  }

  int pick(int n) { return static_cast<int>(rng() % static_cast<unsigned>(n)); }

  ExprPtr expr(int depth) {
    if (depth >= 4 || pick(3) == 0) {
      if (pick(2) == 0) return ib::ic(pick(7) - 3);
      return ib::var(vars[static_cast<size_t>(pick(3))]);
    }
    switch (pick(5)) {
      case 0: return ib::add(expr(depth + 1), expr(depth + 1));
      case 1: return ib::sub(expr(depth + 1), expr(depth + 1));
      case 2: return ib::mul(expr(depth + 1), expr(depth + 1));
      case 3: return ib::neg(expr(depth + 1));
      default: return ib::pow(expr(depth + 1), ib::ic(pick(3)));
    }
  }
};

std::int64_t direct_eval(const Expression& e,
                         const SymbolMap<std::int64_t>& env) {
  switch (e.kind()) {
    case ExprKind::IntConst:
      return static_cast<const IntConst&>(e).value();
    case ExprKind::VarRef:
      return env.at(static_cast<const VarRef&>(e).symbol());
    case ExprKind::UnOp:
      return -direct_eval(static_cast<const UnOp&>(e).operand(), env);
    case ExprKind::BinOp: {
      const auto& b = static_cast<const BinOp&>(e);
      std::int64_t l = direct_eval(b.left(), env);
      std::int64_t r = direct_eval(b.right(), env);
      switch (b.op()) {
        case BinOpKind::Add: return l + r;
        case BinOpKind::Sub: return l - r;
        case BinOpKind::Mul: return l * r;
        case BinOpKind::Pow: {
          std::int64_t out = 1;
          for (std::int64_t k = 0; k < r; ++k) out *= l;
          return out;
        }
        default: break;
      }
      break;
    }
    default:
      break;
  }
  p_unreachable("unexpected node in generated expression");
}

class PolySemantics : public ::testing::TestWithParam<unsigned> {};

TEST_P(PolySemantics, CanonicalFormMatchesDirectEvaluation) {
  Gen gen(GetParam());
  for (int round = 0; round < 8; ++round) {
    ExprPtr e = gen.expr(0);
    Polynomial p = Polynomial::from_expr(*e, /*exact_division=*/false);

    SymbolMap<std::int64_t> env;
    Polynomial substituted = p;
    for (Symbol* v : gen.vars) {
      std::int64_t value = gen.pick(9) - 4;
      env[v] = value;
      substituted = substituted.substitute(
          AtomTable::current().intern_symbol(v),
          Polynomial::constant(Rational(value)));
    }
    ASSERT_TRUE(substituted.is_constant()) << e->to_string();
    ASSERT_TRUE(substituted.constant_value().is_integer())
        << e->to_string();
    EXPECT_EQ(substituted.constant_value().as_integer(),
              direct_eval(*e, env))
        << "expr: " << e->to_string();

    // And the printed canonical form re-canonicalizes to the same
    // polynomial (to_expr/from_expr round trip).
    ExprPtr back = p.to_expr();
    Polynomial again = Polynomial::from_expr(*back);
    EXPECT_TRUE((p - again).is_zero()) << e->to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolySemantics, ::testing::Range(1u, 41u));

}  // namespace
}  // namespace polaris
