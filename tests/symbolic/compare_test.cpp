// Tests for the symbolic comparison engine on the paper's own examples.
#include "symbolic/compare.h"

#include <gtest/gtest.h>

#include "ir/build.h"
#include "parser/parser.h"

namespace polaris {
namespace {

class CompareTest : public ::testing::Test {
 protected:
  SymbolTable symtab;
  Symbol* i = symtab.declare("i", Type::integer(), SymbolKind::Variable);
  Symbol* j = symtab.declare("j", Type::integer(), SymbolKind::Variable);
  Symbol* k = symtab.declare("k", Type::integer(), SymbolKind::Variable);
  Symbol* n = symtab.declare("n", Type::integer(), SymbolKind::Variable);
  Symbol* m = symtab.declare("m", Type::integer(), SymbolKind::Variable);
  AtomId ai = AtomTable::current().intern_symbol(i);
  AtomId aj = AtomTable::current().intern_symbol(j);
  AtomId an = AtomTable::current().intern_symbol(n);

  ExprPtr E(const std::string& text) { return parse_expression(text, symtab); }
  Polynomial P(const std::string& text) {
    return Polynomial::from_expr(*E(text));
  }
};

TEST_F(CompareTest, ConstantSigns) {
  FactContext ctx;
  EXPECT_TRUE(prove_ge0(P("3"), ctx));
  EXPECT_TRUE(prove_ge0(P("0"), ctx));
  EXPECT_FALSE(prove_ge0(P("-1"), ctx));
  EXPECT_TRUE(prove_gt0(P("1"), ctx));
  EXPECT_FALSE(prove_gt0(P("0"), ctx));
}

TEST_F(CompareTest, UnknownWithoutFacts) {
  FactContext ctx;
  EXPECT_FALSE(prove_ge0(P("n"), ctx));
  EXPECT_EQ(compare(*E("i"), *E("j"), ctx), Cmp::Unknown);
}

TEST_F(CompareTest, SimpleRangeFacts) {
  FactContext ctx;
  ctx.add_range(n, ib::ic(1).get(), nullptr);  // n >= 1
  EXPECT_TRUE(prove_ge0(P("n"), ctx));
  EXPECT_TRUE(prove_gt0(P("n"), ctx));
  EXPECT_TRUE(prove_ge0(P("n - 1"), ctx));
  EXPECT_FALSE(prove_gt0(P("n - 1"), ctx));
  EXPECT_TRUE(prove_gt0(P("n + 1"), ctx));
}

TEST_F(CompareTest, LoopIndexInRange) {
  // do i = 1, n  =>  1 <= i <= n, n >= 1.
  FactContext ctx;
  ctx.add_loop(i, *E("1"), *E("n"));
  EXPECT_TRUE(prove_ge0(P("i - 1"), ctx));
  EXPECT_TRUE(prove_ge0(P("n - i"), ctx));
  EXPECT_TRUE(prove_ge0(P("n - 1"), ctx));  // trip-count assumption
  EXPECT_TRUE(prove_le(*E("i"), *E("n"), ctx));
  EXPECT_TRUE(prove_ge(*E("i"), *E("1"), ctx));
  EXPECT_FALSE(prove_lt(*E("i"), *E("n"), ctx));  // i may equal n
}

TEST_F(CompareTest, PaperNSquaredPlusN) {
  // The paper needs n^2 + n > 0 given n >= 1 (Section 3.3.1).
  FactContext ctx;
  ctx.add_range(n, ib::ic(1).get(), nullptr);
  EXPECT_TRUE(prove_gt0(P("n**2 + n"), ctx));
}

TEST_F(CompareTest, QuadraticNeedsMonotonicity) {
  // j^2 - j >= 0 for j >= 1 (forward difference 2j - 1... actually
  // substituting the lower endpoint: (1)^2 - 1 = 0).
  FactContext ctx;
  ctx.add_range(j, ib::ic(1).get(), nullptr);
  EXPECT_TRUE(prove_ge0(P("j**2 - j"), ctx));
  EXPECT_FALSE(prove_gt0(P("j**2 - j"), ctx));
}

TEST_F(CompareTest, TrfdCrossIterationDisjointness) {
  // The paper's headline proof: with f's per-outer-iteration extremes
  //   a2(i) = (i*(n^2+n) + n^2 - n)/2   (max)
  //   b2(i) = (i*(n^2+n))/2 + 1         (min)
  // show b2(i+1) - a2(i) = n+1 > 0 and that b2 is non-decreasing in i.
  FactContext ctx;
  ctx.add_loop(i, *E("0"), *E("m - 1"));
  ctx.add_range(n, ib::ic(1).get(), nullptr);
  Polynomial a2 = P("(i*(n**2 + n) + n**2 - n)/2");
  Polynomial b2 = P("(i*(n**2 + n))/2 + 1");

  Polynomial gap = b2.substitute(ai, P("i + 1")) - a2;
  EXPECT_TRUE((gap - P("n + 1")).is_zero());
  EXPECT_TRUE(prove_gt0(gap, ctx));

  EXPECT_EQ(monotonicity(b2, ai, ctx), Monotonicity::NonDecreasing);
}

TEST_F(CompareTest, MonotonicityClassification) {
  FactContext ctx;
  ctx.add_loop(j, *E("0"), *E("n - 1"));
  ctx.add_range(n, ib::ic(1).get(), nullptr);
  // f = j^2 - j has forward difference 2j >= 0 for j >= 0.
  EXPECT_EQ(monotonicity(P("j**2 - j"), aj, ctx),
            Monotonicity::NonDecreasing);
  EXPECT_EQ(monotonicity(P("-2*j"), aj, ctx), Monotonicity::NonIncreasing);
  EXPECT_EQ(monotonicity(P("n"), aj, ctx), Monotonicity::Constant);
  // n*j has unknown monotonicity in j without a sign for n... but n >= 1
  // here, so it is non-decreasing; drop the fact to get Unknown.
  FactContext empty;
  EXPECT_EQ(monotonicity(P("n*j"), aj, empty), Monotonicity::Unknown);
  EXPECT_EQ(monotonicity(P("n*j"), aj, ctx), Monotonicity::NonDecreasing);
}

TEST_F(CompareTest, EliminateRangeEndpoints) {
  // f = k + 1 over k in [0, j-1]: min = 1, max = j.
  FactContext ctx;
  ctx.add_loop(j, *E("1"), *E("n"));
  Extremes ex = eliminate_range(P("k + 1"),
                                AtomTable::current().intern_symbol(k),
                                P("0"), P("j - 1"), ctx);
  ASSERT_TRUE(ex.min.has_value());
  ASSERT_TRUE(ex.max.has_value());
  EXPECT_TRUE((*ex.min - P("1")).is_zero());
  EXPECT_TRUE((*ex.max - P("j")).is_zero());
}

TEST_F(CompareTest, EliminateRangeUsesMonotonicity) {
  // f = (j^2-j)/2 over j in [0, n-1] is non-decreasing (given j >= 0):
  // min = f(0) = 0, max = f(n-1) = (n^2 - 3n + 2)/2.
  FactContext ctx;
  ctx.add_loop(j, *E("0"), *E("n - 1"));
  ctx.add_range(n, ib::ic(1).get(), nullptr);
  Extremes ex = eliminate_range(P("(j**2 - j)/2"), aj, P("0"), P("n - 1"),
                                ctx);
  ASSERT_TRUE(ex.min.has_value());
  ASSERT_TRUE(ex.max.has_value());
  EXPECT_TRUE(ex.min->is_zero());
  EXPECT_TRUE((*ex.max - P("(n*n - 3*n + 2)/2")).is_zero());
}

TEST_F(CompareTest, EliminateRangeUnknownMonotonicityFails) {
  // f = j^2 - 2*m*j: monotonicity in j unknown without facts about m.
  FactContext ctx;
  ctx.add_loop(j, *E("0"), *E("n - 1"));
  Extremes ex = eliminate_range(P("j**2 - 2*m*j"), aj, P("0"), P("n - 1"),
                                ctx);
  EXPECT_FALSE(ex.min.has_value());
  EXPECT_FALSE(ex.max.has_value());
}

TEST_F(CompareTest, CompareStrongestRelation) {
  FactContext ctx;
  ctx.add_loop(i, *E("1"), *E("n"));
  EXPECT_EQ(compare(*E("i"), *E("i"), ctx), Cmp::EQ);
  EXPECT_EQ(compare(*E("i + 1"), *E("i"), ctx), Cmp::GT);
  EXPECT_EQ(compare(*E("i"), *E("n"), ctx), Cmp::LE);
  EXPECT_EQ(compare(*E("1"), *E("i"), ctx), Cmp::LE);
  EXPECT_EQ(compare(*E("0"), *E("i"), ctx), Cmp::LT);
}

TEST_F(CompareTest, IfConditionFacts) {
  // Fact from "if (mp .ge. m*p)": mp - m*p >= 0 proves mp >= m*p — the
  // paper's Figure 4 query (resolved there via GSA; the comparison engine
  // consumes the fact in the same form).
  Symbol* mp = symtab.declare("mp", Type::integer(), SymbolKind::Variable);
  Symbol* p = symtab.declare("p", Type::integer(), SymbolKind::Variable);
  (void)mp; (void)p;
  FactContext ctx;
  ctx.add_ge0(*E("mp - m*p"));
  EXPECT_TRUE(prove_ge(*E("mp"), *E("m*p"), ctx));
}

TEST_F(CompareTest, EliminationRankOrdersInnerFirst) {
  // With ranks guiding elimination, inner index k (rank 2) goes before n
  // (rank 0): prove k <= n*j given k <= j, j <= n... needs two rounds.
  FactContext ctx;
  ctx.add_loop(j, *E("1"), *E("n"));
  ctx.add_loop(k, *E("1"), *E("j"));
  ctx.set_rank(AtomTable::current().intern_symbol(k), 2);
  ctx.set_rank(aj, 1);
  EXPECT_TRUE(prove_le(*E("k"), *E("n"), ctx));
}

TEST_F(CompareTest, ProveEqByCancellation) {
  FactContext ctx;
  EXPECT_TRUE(prove_eq(*E("(i+1)*(i-1)"), *E("i*i - 1"), ctx));
  EXPECT_FALSE(prove_eq(*E("i"), *E("j"), ctx));
}

}  // namespace
}  // namespace polaris
