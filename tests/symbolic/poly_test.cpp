#include "symbolic/poly.h"

#include <gtest/gtest.h>

#include "ir/build.h"
#include "parser/parser.h"

namespace polaris {
namespace {

class PolyTest : public ::testing::Test {
 protected:
  SymbolTable symtab;
  Symbol* i = symtab.declare("i", Type::integer(), SymbolKind::Variable);
  Symbol* j = symtab.declare("j", Type::integer(), SymbolKind::Variable);
  Symbol* k = symtab.declare("k", Type::integer(), SymbolKind::Variable);
  Symbol* n = symtab.declare("n", Type::integer(), SymbolKind::Variable);
  AtomId ai = AtomTable::current().intern_symbol(i);
  AtomId aj = AtomTable::current().intern_symbol(j);
  AtomId ak = AtomTable::current().intern_symbol(k);
  AtomId an = AtomTable::current().intern_symbol(n);

  Polynomial P(const std::string& text) {
    ExprPtr e = parse_expression(text, symtab);
    return Polynomial::from_expr(*e);
  }
};

TEST_F(PolyTest, InterningSharesEqualAtoms) {
  ExprPtr e1 = ib::var(n);
  ExprPtr e2 = ib::var(n);
  EXPECT_EQ(AtomTable::current().intern(*e1),
            AtomTable::current().intern(*e2));
  EXPECT_EQ(AtomTable::current().symbol(an), n);
}

TEST_F(PolyTest, CanonicalizationCancels) {
  EXPECT_TRUE((P("i + j") - P("j + i")).is_zero());
  EXPECT_TRUE((P("(i+1)*(i-1)") - P("i*i - 1")).is_zero());
  EXPECT_TRUE((P("2*(i+j)") - P("2*i") - P("2*j")).is_zero());
}

TEST_F(PolyTest, PowExpansion) {
  EXPECT_TRUE((P("(i+1)**2") - P("i*i + 2*i + 1")).is_zero());
  EXPECT_TRUE((P("i**3") - P("i*i*i")).is_zero());
}

TEST_F(PolyTest, ConstantsAndParameters) {
  Symbol* c = symtab.declare("cparam", Type::integer(),
                             SymbolKind::Parameter);
  c->set_param_value(ib::ic(10));
  ExprPtr e = ib::mul(ib::var(c), ib::var(i));
  Polynomial p = Polynomial::from_expr(*e);
  EXPECT_EQ(p.coefficient(Monomial::atom(ai)), Rational(10));
}

TEST_F(PolyTest, DegreeQueries) {
  Polynomial p = P("i*i*n + j - 3");
  EXPECT_EQ(p.degree_in(ai), 2);
  EXPECT_EQ(p.degree_in(an), 1);
  EXPECT_EQ(p.degree_in(aj), 1);
  EXPECT_EQ(p.degree_in(ak), 0);
  EXPECT_TRUE(p.contains(an));
  EXPECT_FALSE(p.contains(ak));
}

TEST_F(PolyTest, OpaqueAtomsForNonPolynomialParts) {
  // mod(i,2) is opaque, but two occurrences cancel.
  Polynomial p = P("mod(i,2) + j - mod(i,2)");
  EXPECT_TRUE((p - P("j")).is_zero());
}

TEST_F(PolyTest, ExactDivisionMode) {
  // Dependence-analysis mode treats /2 as rational scaling.
  Polynomial p = P("(j*j - j)/2");
  EXPECT_EQ(p.coefficient(Monomial::atom(aj, 2)), Rational(1, 2));
}

TEST_F(PolyTest, TruncatingDivisionModeKeepsOpaque) {
  ExprPtr e = parse_expression("(j*j - j)/2", symtab);
  Polynomial p = Polynomial::from_expr(*e, /*exact_division=*/false);
  // The division is opaque: p is a single atom, not a degree-2 polynomial.
  EXPECT_EQ(p.degree_in(aj), 0);
  EXPECT_FALSE(p.is_constant());
}

TEST_F(PolyTest, TruncatingConstantDivision) {
  ExprPtr e = parse_expression("7/2", symtab);
  Polynomial p = Polynomial::from_expr(*e, /*exact_division=*/false);
  ASSERT_TRUE(p.is_constant());
  EXPECT_EQ(p.constant_value(), Rational(3));  // Fortran truncation
}

TEST_F(PolyTest, SubstituteExpandsPowers) {
  // (i)^2 with i := j+1 -> j^2 + 2j + 1
  Polynomial p = P("i*i").substitute(ai, P("j + 1"));
  EXPECT_TRUE((p - P("j*j + 2*j + 1")).is_zero());
}

TEST_F(PolyTest, ForwardDifferenceTrfdInnermost) {
  // Paper Section 3.3.1: f = (i*(n^2+n) + j^2 - j)/2 + k + 1.
  Polynomial f = P("(i*(n**2 + n) + j**2 - j)/2 + k + 1");
  // d/dk: f(k+1) - f(k) = 1.
  Polynomial dk = f.forward_difference(ak);
  ASSERT_TRUE(dk.is_constant());
  EXPECT_EQ(dk.constant_value(), Rational(1));
}

TEST_F(PolyTest, ForwardDifferenceTrfdMiddle) {
  // After eliminating k at its max (k = j-1):
  //   a1(i,j) = (i*(n^2+n) + j^2 - j)/2 + j
  // and a1(i,j+1) - a1(i,j) = j + 1 (paper's computation).
  Polynomial a1 = P("(i*(n**2 + n) + j**2 - j)/2 + j");
  Polynomial dj = a1.forward_difference(aj);
  EXPECT_TRUE((dj - P("j + 1")).is_zero());

  // And for the minimum b1(i,j) = (i*(n^2+n) + j^2 - j)/2 + 1 the forward
  // difference is j (monotonically non-decreasing since j >= 0).
  Polynomial b1 = P("(i*(n**2 + n) + j**2 - j)/2 + 1");
  EXPECT_TRUE((b1.forward_difference(aj) - P("j")).is_zero());
}

TEST_F(PolyTest, FaulhaberIdentities) {
  // S_k(m) - S_k(m-1) == m^k must hold identically for every k.
  AtomId m = AtomTable::current().intern_symbol(
      symtab.declare("mfaul", Type::integer(), SymbolKind::Variable));
  for (int kdeg = 0; kdeg <= 6; ++kdeg) {
    Polynomial sk = faulhaber(kdeg, m);
    Polynomial diff = sk - sk.substitute(m, Polynomial::atom(m) -
                                                Polynomial::constant(1));
    Polynomial expect = Polynomial::atom(m).pow(kdeg);
    EXPECT_TRUE((diff - expect).is_zero()) << "k = " << kdeg;
  }
}

TEST_F(PolyTest, FaulhaberNumeric) {
  AtomId m = AtomTable::current().intern_symbol(
      symtab.declare("mnum", Type::integer(), SymbolKind::Variable));
  // S_2(5) = 1+4+9+16+25 = 55, S_3(4) = 100, S_6(3) = 1 + 64 + 729 = 794.
  auto eval = [&](int kdeg, std::int64_t v) {
    Polynomial p =
        faulhaber(kdeg, m).substitute(m, Polynomial::constant(Rational(v)));
    p_assert(p.is_constant());
    return p.constant_value();
  };
  EXPECT_EQ(eval(2, 5), Rational(55));
  EXPECT_EQ(eval(3, 4), Rational(100));
  EXPECT_EQ(eval(6, 3), Rational(794));
}

TEST_F(PolyTest, SumOverConstantRange) {
  // sum_{i=1}^{10} i = 55; sum_{i=0}^{j-1} 1 = j.
  Polynomial s1 = P("i").sum_over(ai, P("1"), P("10"));
  ASSERT_TRUE(s1.is_constant());
  EXPECT_EQ(s1.constant_value(), Rational(55));

  Polynomial s2 = P("1").sum_over(ai, P("0"), P("j - 1"));
  EXPECT_TRUE((s2 - P("j")).is_zero());
}

TEST_F(PolyTest, SumOverTriangular) {
  // sum_{k=0}^{j-1} 1 = j, then sum_{j=0}^{n-1} j = (n^2-n)/2 — the closed
  // form of the paper's Figure 1/2 cascaded induction.
  Polynomial inner = P("1").sum_over(ak, P("0"), P("j - 1"));
  Polynomial outer = inner.sum_over(aj, P("0"), P("n - 1"));
  EXPECT_TRUE((outer - P("(n*n - n)/2")).is_zero());
}

TEST_F(PolyTest, SumOverEmptyRangeIsZero) {
  Polynomial s = P("i").sum_over(ai, P("1"), P("0"));
  ASSERT_TRUE(s.is_constant());
  EXPECT_EQ(s.constant_value(), Rational(0));
}

TEST_F(PolyTest, ToExprCommonDenominator) {
  Polynomial p = P("(j**2 - j)/2");
  ExprPtr e = p.to_expr();
  EXPECT_EQ(e->to_string(), "(j*j-j)/2");
}

TEST_F(PolyTest, ToExprRoundTrip) {
  for (const char* text :
       {"i + 2*j - 3", "i*i*n - j/2 + 1", "n**2 + n", "0", "-i + 4"}) {
    Polynomial p = P(text);
    ExprPtr back = p.to_expr();
    Polynomial again = Polynomial::from_expr(*back);
    EXPECT_TRUE((p - again).is_zero()) << text;
  }
}

TEST_F(PolyTest, AtomsListsAllIndeterminates) {
  Polynomial p = P("i*n + j");
  auto atoms = p.atoms();
  EXPECT_EQ(atoms.size(), 3u);
}

// --- hash-consing index: rollback and remap --------------------------------

TEST_F(PolyTest, TruncateRollsBackHashIndex) {
  AtomTable table;
  AtomTable::Scope scope(&table);
  AtomId a = table.intern_symbol(i);
  AtomId b = table.intern_symbol(j);
  EXPECT_EQ(table.size(), 2u);
  ExprPtr sum = ib::add(ib::var(i), ib::var(j));
  AtomId s = table.intern(*sum);
  EXPECT_EQ(table.size(), 3u);

  table.truncate(2);
  EXPECT_EQ(table.size(), 2u);
  // Retained ids answer through the index unchanged...
  EXPECT_EQ(table.intern_symbol(i), a);
  EXPECT_EQ(table.intern_symbol(j), b);
  // ...and the dropped expression re-interns into the freed id, exactly
  // as in a run that never interned it before the rollback.
  EXPECT_EQ(table.intern(*sum), s);
  EXPECT_EQ(table.size(), 3u);
}

TEST_F(PolyTest, TruncateDropsSymbolFastPath) {
  AtomTable table;
  AtomTable::Scope scope(&table);
  table.intern_symbol(i);
  AtomId b = table.intern_symbol(j);
  table.truncate(static_cast<std::size_t>(b));
  // j's dropped fast-path entry must not resurrect the stale id: an
  // unrelated intern takes the freed slot first.
  ExprPtr other = ib::add(ib::var(k), ib::ic(1));
  AtomId o = table.intern(*other);
  EXPECT_EQ(o, b);  // freed id reused by the next intern, whatever it is
  AtomId j2 = table.intern_symbol(j);
  EXPECT_NE(j2, o);
  EXPECT_EQ(table.symbol(j2), j);
}

TEST_F(PolyTest, RemapRewritesAtomsAndRebuildsIndex) {
  SymbolTable clone_tab;
  Symbol* ic2 = clone_tab.declare("i", Type::integer(), SymbolKind::Variable);
  AtomTable table;
  AtomTable::Scope scope(&table);
  AtomId a = table.intern_symbol(i);
  ExprPtr prod = ib::mul(ib::var(i), ib::var(n));
  AtomId p = table.intern(*prod);

  SymbolMap<Symbol*> map;
  map[i] = ic2;
  table.remap(map);

  // The clone inherits the original's atom id through the rebuilt index,
  // for both the VarRef fast path and structural interning.
  EXPECT_EQ(table.intern_symbol(ic2), a);
  EXPECT_EQ(table.symbol(a), ic2);
  ExprPtr prod2 = ib::mul(ib::var(ic2), ib::var(n));
  EXPECT_EQ(table.intern(*prod2), p);
  EXPECT_EQ(table.size(), 2u);  // i and i*n — nothing new interned
}

TEST_F(PolyTest, RemapCollisionKeepsLowestId) {
  // Two distinct symbols remapped onto the same target: both old atoms
  // become structurally equal, and interning resolves to the lowest id
  // (the same answer the pre-remap table would give for the first one).
  AtomTable table;
  AtomTable::Scope scope(&table);
  AtomId a = table.intern_symbol(i);
  AtomId b = table.intern_symbol(j);
  ASSERT_LT(a, b);
  SymbolMap<Symbol*> map;
  map[i] = k;
  map[j] = k;
  table.remap(map);
  EXPECT_EQ(table.intern_symbol(k), a);
  VarRef kref(k);
  EXPECT_EQ(table.intern(kref), a);
}

// --- canonicalization cache -------------------------------------------------

TEST_F(PolyTest, CanonCacheHitsOnRepeatedConversion) {
  AtomTable table;
  AtomTable::Scope scope(&table);
  ExprPtr e = parse_expression("i*(n**2 + n) + j**2 - j", symtab);
  Polynomial first = Polynomial::from_expr(*e);
  std::uint64_t hits_before = table.canon_hits();
  Polynomial second = Polynomial::from_expr(*e);
  EXPECT_GT(table.canon_hits(), hits_before);
  EXPECT_TRUE((first - second).is_zero());
  EXPECT_GT(table.canon_entries(), 0u);
}

TEST_F(PolyTest, CanonCacheKeyedByDivisionMode) {
  AtomTable table;
  AtomTable::Scope scope(&table);
  ExprPtr e = parse_expression("(j*j - j)/2 + i", symtab);
  Polynomial exact = Polynomial::from_expr(*e, /*exact_division=*/true);
  Polynomial trunc = Polynomial::from_expr(*e, /*exact_division=*/false);
  // The trunc-mode conversion must not be served from the exact-mode
  // entry: in exact mode the division folds to rational coefficients, in
  // trunc mode it stays opaque.
  AtomId aj2 = table.intern_symbol(j);
  EXPECT_EQ(exact.coefficient(Monomial::atom(aj2, 2)), Rational(1, 2));
  EXPECT_EQ(trunc.degree_in(aj2), 0);
}

TEST_F(PolyTest, CanonCacheClearedByTruncateAndRemap) {
  AtomTable table;
  AtomTable::Scope scope(&table);
  ExprPtr e = parse_expression("i + n*2", symtab);
  Polynomial::from_expr(*e);
  EXPECT_GT(table.canon_entries(), 0u);
  table.truncate(0);
  EXPECT_EQ(table.canon_entries(), 0u);

  Polynomial::from_expr(*e);
  EXPECT_GT(table.canon_entries(), 0u);
  table.remap(SymbolMap<Symbol*>{});
  EXPECT_EQ(table.canon_entries(), 0u);
}

TEST_F(PolyTest, CanonCacheDisabledStillConverts) {
  AtomTable table;
  table.set_canon_cache_enabled(false);
  AtomTable::Scope scope(&table);
  ExprPtr e = parse_expression("i*(n+1) + j", symtab);
  Polynomial p1 = Polynomial::from_expr(*e);
  Polynomial p2 = Polynomial::from_expr(*e);
  EXPECT_TRUE((p1 - p2).is_zero());
  EXPECT_EQ(table.canon_entries(), 0u);
  EXPECT_EQ(table.canon_hits(), 0u);
}

}  // namespace
}  // namespace polaris
