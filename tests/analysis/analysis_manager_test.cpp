// AnalysisManager tests: memoization (recompute counts), PreservedAnalyses
// invalidation, and cache refresh after a mutating pass.
#include "analysis/analysis_manager.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "passes/normalize.h"
#include "support/options.h"

namespace polaris {
namespace {

std::unique_ptr<Program> parse(const std::string& src) {
  return parse_program(src);
}

std::set<std::string> names(const SymbolSet& syms) {
  std::set<std::string> out;
  for (Symbol* s : syms) out.insert(s->name());
  return out;
}

TEST(AnalysisManagerTest, RepeatedQueryIsCacheHit) {
  auto p = parse(
      "      program t\n"
      "      x = 1.0\n"
      "      y = x + 1.0\n"
      "      end\n");
  auto& stmts = p->main()->stmts();
  AnalysisManager am;

  const auto& a = am.must_defined_scalars(stmts.first(), stmts.last());
  EXPECT_EQ(am.stats().queries, 1u);
  EXPECT_EQ(am.stats().recomputes, 1u);
  EXPECT_EQ(am.stats().hits, 0u);

  const auto& b = am.must_defined_scalars(stmts.first(), stmts.last());
  EXPECT_EQ(&a, &b);  // same cached object, not a recomputation
  EXPECT_EQ(am.stats().queries, 2u);
  EXPECT_EQ(am.stats().recomputes, 1u);
  EXPECT_EQ(am.stats().hits, 1u);
  EXPECT_EQ(names(b), (std::set<std::string>{"x", "y"}));
}

TEST(AnalysisManagerTest, DistinctQueriesCacheIndependently) {
  auto p = parse(
      "      program t\n"
      "      real a(10)\n"
      "      a(i) = x\n"
      "      end\n");
  auto& stmts = p->main()->stmts();
  AnalysisManager am;

  am.may_defined_symbols(stmts.first(), stmts.last());
  am.used_symbols(stmts.first(), stmts.last());
  EXPECT_EQ(am.stats().recomputes, 2u);  // different query kinds both miss
  am.may_defined_symbols(stmts.first(), stmts.last());
  am.used_symbols(stmts.first(), stmts.last());
  EXPECT_EQ(am.stats().recomputes, 2u);
  EXPECT_EQ(am.stats().hits, 2u);
}

TEST(AnalysisManagerTest, PreservingPassKeepsCache) {
  auto p = parse(
      "      program t\n"
      "      x = 1.0\n"
      "      end\n");
  auto& stmts = p->main()->stmts();
  AnalysisManager am;

  am.must_defined_scalars(stmts.first(), stmts.last());
  am.invalidate(PreservedAnalyses::all());  // annotation-only pass
  am.must_defined_scalars(stmts.first(), stmts.last());
  EXPECT_EQ(am.stats().recomputes, 1u);
  EXPECT_EQ(am.stats().hits, 1u);
  EXPECT_EQ(am.stats().invalidations, 0u);

  am.invalidate(PreservedAnalyses::none());  // mutating pass
  am.must_defined_scalars(stmts.first(), stmts.last());
  EXPECT_EQ(am.stats().recomputes, 2u);
  EXPECT_EQ(am.stats().invalidations, 1u);
}

TEST(AnalysisManagerTest, PartialPreservationIsPerFamily) {
  auto p = parse(
      "      program t\n"
      "      real a(10)\n"
      "      do i = 1, 10\n"
      "        a(i) = 1.0\n"
      "      end do\n"
      "      end\n");
  ProgramUnit& unit = *p->main();
  auto& stmts = unit.stmts();
  AnalysisManager am;

  am.may_defined_symbols(stmts.first(), stmts.last());
  GsaQuery* q = &am.gsa(unit);
  const std::uint64_t recomputed = am.stats().recomputes;

  // Keep GSA, drop structure facts: the region query recomputes but the
  // GSA engine instance survives.
  am.invalidate(PreservedAnalyses::none().preserve(AnalysisID::GsaFacts));
  am.may_defined_symbols(stmts.first(), stmts.last());
  EXPECT_EQ(am.stats().recomputes, recomputed + 1);
  EXPECT_EQ(&am.gsa(unit), q);
}

TEST(AnalysisManagerTest, MutatingPassRefreshesCachedFacts) {
  // Loop normalization rewrites the body's index uses in place (the body
  // statements survive, their expressions change), so a cached used-symbols
  // answer for the body is stale afterwards.  The pass self-invalidates;
  // the next query must see the normalized index, not the original.
  auto p = parse(
      "      program t\n"
      "      real a(10)\n"
      "      do i = 1, 9, 2\n"
      "        a(i) = 1.0\n"
      "      end do\n"
      "      end\n");
  ProgramUnit& unit = *p->main();
  DoStmt* loop = unit.stmts().loops().front();
  Statement* body_first = loop->next();
  Statement* body_last = loop->follow()->prev();

  AnalysisManager am;
  std::set<std::string> before =
      names(am.used_symbols(body_first, body_last));
  EXPECT_EQ(before.count("i"), 1u);

  Options opts = Options::polaris();
  Diagnostics diags;
  ASSERT_EQ(normalize_loops(unit, opts, diags, am), 1);

  std::set<std::string> after = names(am.used_symbols(body_first, body_last));
  EXPECT_EQ(after.count("i"), 0u) << "cache served a stale pre-pass answer";
  EXPECT_NE(after, before);
  EXPECT_GE(am.stats().invalidations, 1u);
}

}  // namespace
}  // namespace polaris
