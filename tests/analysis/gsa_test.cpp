// Demand-driven GSA backward-substitution tests, including the paper's
// Figure 4 query (MP >= M*P).
#include "analysis/gsa.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace polaris {
namespace {

struct Fixture {
  std::unique_ptr<Program> prog;
  ProgramUnit* unit = nullptr;

  explicit Fixture(const std::string& src) : prog(parse_program(src)) {
    unit = prog->main();
  }
  Statement* stmt(size_t idx) {
    Statement* s = unit->stmts().first();
    for (size_t i = 0; i < idx; ++i) s = s->next();
    return s;
  }
};

TEST(GsaTest, StraightLineSubstitution) {
  Fixture f(
      "      program t\n"
      "      m = 4\n"
      "      mp = m*p\n"
      "      x = 1.0\n"  // query point
      "      end\n");
  GsaQuery q(*f.unit);
  ExprPtr e = parse_expression("mp", f.unit->symtab());
  auto vals = q.possible_values(*e, f.stmt(2));
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_EQ(vals[0]->to_string(), "4*p");
}

TEST(GsaTest, Figure4Query) {
  // Paper Figure 4: MP = M*P before the nest; prove MP >= M*P at the loop.
  Fixture f(
      "      program t\n"
      "      real a(1000), b(1000), c(1000)\n"
      "      mp = m*p\n"
      "      do i = 1, 10\n"
      "        do j = 1, mp\n"
      "          a(j) = b(j)\n"
      "        end do\n"
      "        do k = 1, m*p\n"
      "          c(k) = a(k)\n"
      "        end do\n"
      "      end do\n"
      "      end\n");
  GsaQuery q(*f.unit);
  DoStmt* iloop = f.unit->stmts().loops()[0];
  SymbolTable& st = f.unit->symtab();
  FactContext ctx;
  EXPECT_TRUE(q.prove_ge_at(*parse_expression("mp", st),
                            *parse_expression("m*p", st), iloop, ctx));
  // And the reverse inequality also holds (they are equal).
  EXPECT_TRUE(q.prove_le_at(*parse_expression("mp", st),
                            *parse_expression("m*p", st), iloop, ctx));
}

TEST(GsaTest, GammaForksBothArms) {
  Fixture f(
      "      program t\n"
      "      if (c .gt. 0.0) then\n"
      "        k = 2\n"
      "      else\n"
      "        k = 3\n"
      "      end if\n"
      "      x = 1.0\n"  // query point
      "      end\n");
  GsaQuery q(*f.unit);
  SymbolTable& st = f.unit->symtab();
  Statement* at = f.unit->stmts().last();
  auto vals = q.possible_values(*parse_expression("k", st), at);
  ASSERT_EQ(vals.size(), 2u);
  // Both k >= 2 must be provable across the gamma.
  FactContext ctx;
  EXPECT_TRUE(q.prove_ge_at(*parse_expression("k", st),
                            *parse_expression("2", st), at, ctx));
  EXPECT_FALSE(q.prove_ge_at(*parse_expression("k", st),
                             *parse_expression("3", st), at, ctx));
}

TEST(GsaTest, GammaWithoutElseIncludesFallThrough) {
  Fixture f(
      "      program t\n"
      "      k = 5\n"
      "      if (c .gt. 0.0) then\n"
      "        k = 7\n"
      "      end if\n"
      "      x = 1.0\n"
      "      end\n");
  GsaQuery q(*f.unit);
  SymbolTable& st = f.unit->symtab();
  Statement* at = f.unit->stmts().last();
  auto vals = q.possible_values(*parse_expression("k", st), at);
  ASSERT_EQ(vals.size(), 2u);  // 7 (then) and 5 (fall-through)
  FactContext ctx;
  EXPECT_TRUE(q.prove_ge_at(*parse_expression("k", st),
                            *parse_expression("5", st), at, ctx));
}

TEST(GsaTest, MuStopsSubstitution) {
  // k is loop-carried: its value at the use is a mu gate, not 0.
  Fixture f(
      "      program t\n"
      "      k = 0\n"
      "      do i = 1, n\n"
      "        k = k + 1\n"
      "        x = k + 1.0\n"  // query inside loop
      "      end do\n"
      "      end\n");
  GsaQuery q(*f.unit);
  SymbolTable& st = f.unit->symtab();
  DoStmt* loop = f.unit->stmts().loops()[0];
  Statement* use = loop->next()->next();  // x = ...
  auto vals = q.possible_values(*parse_expression("k", st), use);
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_EQ(vals[0]->to_string(), "k");  // unsubstituted
}

TEST(GsaTest, EtaStopsSubstitutionAfterLoop) {
  Fixture f(
      "      program t\n"
      "      k = 0\n"
      "      do i = 1, n\n"
      "        k = k + 1\n"
      "      end do\n"
      "      x = 1.0\n"  // after the loop: k is iteration-dependent
      "      end\n");
  GsaQuery q(*f.unit);
  SymbolTable& st = f.unit->symtab();
  Statement* at = f.unit->stmts().last();
  auto vals = q.possible_values(*parse_expression("k", st), at);
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_EQ(vals[0]->to_string(), "k");
}

TEST(GsaTest, LoopInvariantPassesThroughLoop) {
  // m is not modified by the loop: its pre-loop value flows through.
  Fixture f(
      "      program t\n"
      "      m = 8\n"
      "      do i = 1, n\n"
      "        x = x + 1.0\n"
      "      end do\n"
      "      y = 1.0\n"
      "      end\n");
  GsaQuery q(*f.unit);
  SymbolTable& st = f.unit->symtab();
  Statement* at = f.unit->stmts().last();
  auto vals = q.possible_values(*parse_expression("m", st), at);
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_EQ(vals[0]->to_string(), "8");
}

TEST(GsaTest, CallClobbersArgument) {
  Fixture f(
      "      program t\n"
      "      k = 1\n"
      "      call sub(k)\n"
      "      x = 1.0\n"
      "      end\n"
      "      subroutine sub(a)\n"
      "      a = 2\n"
      "      end\n");
  GsaQuery q(*f.unit);
  SymbolTable& st = f.unit->symtab();
  Statement* at = f.unit->stmts().last();
  auto vals = q.possible_values(*parse_expression("k", st), at);
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_EQ(vals[0]->to_string(), "k");  // opaque: call may modify k
}

TEST(GsaTest, ChainedSubstitution) {
  Fixture f(
      "      program t\n"
      "      n = 10\n"
      "      m = n*2\n"
      "      k = m + n\n"
      "      x = 1.0\n"
      "      end\n");
  GsaQuery q(*f.unit);
  SymbolTable& st = f.unit->symtab();
  Statement* at = f.unit->stmts().last();
  auto vals = q.possible_values(*parse_expression("k", st), at);
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_EQ(vals[0]->to_string(), "30");
}

TEST(GsaTest, ParameterValuesSubstituted) {
  Fixture f(
      "      program t\n"
      "      parameter (n = 64)\n"
      "      x = 1.0\n"
      "      end\n");
  GsaQuery q(*f.unit);
  SymbolTable& st = f.unit->symtab();
  Statement* at = f.unit->stmts().last();
  auto vals = q.possible_values(*parse_expression("n + 1", st), at);
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_EQ(vals[0]->to_string(), "65");
}

TEST(GsaTest, DataValueReachesStartOfMain) {
  Fixture f(
      "      program t\n"
      "      integer k\n"
      "      data k /42/\n"
      "      x = 1.0\n"
      "      end\n");
  GsaQuery q(*f.unit);
  SymbolTable& st = f.unit->symtab();
  Statement* at = f.unit->stmts().last();
  auto vals = q.possible_values(*parse_expression("k", st), at);
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_EQ(vals[0]->to_string(), "42");
}

TEST(GsaTest, GotoTargetBlocksSubstitution) {
  Fixture f(
      "      program t\n"
      "      k = 1\n"
      "      goto 10\n"
      "   10 k = 2\n"
      "      x = 1.0\n"
      "      end\n");
  GsaQuery q(*f.unit);
  SymbolTable& st = f.unit->symtab();
  Statement* at = f.unit->stmts().last();
  auto vals = q.possible_values(*parse_expression("k", st), at);
  // The def at label 10 is found first (before the join), so substitution
  // still succeeds here; the join blocks only queries *behind* the target.
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_EQ(vals[0]->to_string(), "2");
}

}  // namespace
}  // namespace polaris
