#include "analysis/structure.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace polaris {
namespace {

std::unique_ptr<Program> parse(const std::string& src) {
  return parse_program(src);
}

std::set<std::string> names(const SymbolSet& syms) {
  std::set<std::string> out;
  for (Symbol* s : syms) out.insert(s->name());
  return out;
}

TEST(StructureTest, MustDefinedStraightLine) {
  auto p = parse(
      "      program t\n"
      "      x = 1.0\n"
      "      y = x + 1.0\n"
      "      end\n");
  auto& stmts = p->main()->stmts();
  auto defs = must_defined_scalars(stmts.first(), stmts.last());
  EXPECT_EQ(names(defs), (std::set<std::string>{"x", "y"}));
}

TEST(StructureTest, ArrayAssignIsMayNotMust) {
  auto p = parse(
      "      program t\n"
      "      real a(10)\n"
      "      a(i) = 1.0\n"
      "      end\n");
  auto& stmts = p->main()->stmts();
  EXPECT_TRUE(must_defined_scalars(stmts.first(), stmts.last()).empty());
  EXPECT_EQ(names(may_defined_symbols(stmts.first(), stmts.last())),
            (std::set<std::string>{"a"}));
}

TEST(StructureTest, IfBranchesIntersectForMust) {
  auto p = parse(
      "      program t\n"
      "      if (c .gt. 0.0) then\n"
      "        x = 1.0\n"
      "        y = 1.0\n"
      "      else\n"
      "        x = 2.0\n"
      "      end if\n"
      "      end\n");
  auto& stmts = p->main()->stmts();
  auto must = must_defined_scalars(stmts.first(), stmts.last());
  EXPECT_EQ(names(must), (std::set<std::string>{"x"}));
  auto may = may_defined_symbols(stmts.first(), stmts.last());
  EXPECT_EQ(names(may), (std::set<std::string>{"x", "y"}));
}

TEST(StructureTest, IfWithoutElseIsNotMust) {
  auto p = parse(
      "      program t\n"
      "      if (c .gt. 0.0) then\n"
      "        x = 1.0\n"
      "      end if\n"
      "      end\n");
  auto& stmts = p->main()->stmts();
  EXPECT_TRUE(must_defined_scalars(stmts.first(), stmts.last()).empty());
}

TEST(StructureTest, UpwardExposedUses) {
  auto p = parse(
      "      program t\n"
      "      x = y + 1.0\n"   // y exposed
      "      z = x + 1.0\n"   // x defined above: not exposed
      "      end\n");
  auto& stmts = p->main()->stmts();
  auto exposed = upward_exposed_scalars(stmts.first(), stmts.last());
  EXPECT_EQ(names(exposed), (std::set<std::string>{"y"}));
}

TEST(StructureTest, ExposedThroughConditionalDef) {
  // x defined only in one branch: later use is still exposed.
  auto p = parse(
      "      program t\n"
      "      if (c .gt. 0.0) then\n"
      "        x = 1.0\n"
      "      end if\n"
      "      y = x\n"
      "      end\n");
  auto& stmts = p->main()->stmts();
  auto exposed = upward_exposed_scalars(stmts.first(), stmts.last());
  EXPECT_TRUE(exposed.count(p->main()->symtab().lookup("x")));
}

TEST(StructureTest, LoopBodyDefsAreMay) {
  // A loop may execute zero times, so its defs are not must-defs of the
  // surrounding region; uses inside are exposed.
  auto p = parse(
      "      program t\n"
      "      do i = 1, n\n"
      "        x = y + 1.0\n"
      "      end do\n"
      "      end\n");
  auto& stmts = p->main()->stmts();
  auto must = must_defined_scalars(stmts.first(), stmts.last());
  EXPECT_FALSE(must.count(p->main()->symtab().lookup("x")));
  EXPECT_TRUE(must.count(p->main()->symtab().lookup("i")));  // index set
  auto exposed = upward_exposed_scalars(stmts.first(), stmts.last());
  EXPECT_TRUE(exposed.count(p->main()->symtab().lookup("y")));
  EXPECT_TRUE(exposed.count(p->main()->symtab().lookup("n")));
}

TEST(StructureTest, CallMakesArgsMayDefined) {
  auto p = parse(
      "      program t\n"
      "      call sub(x, 1)\n"
      "      end\n"
      "      subroutine sub(a, n)\n"
      "      a = n\n"
      "      end\n");
  auto& stmts = p->main()->stmts();
  auto may = may_defined_symbols(stmts.first(), stmts.last());
  EXPECT_TRUE(may.count(p->main()->symtab().lookup("x")));
  EXPECT_TRUE(must_defined_scalars(stmts.first(), stmts.last()).empty());
}

TEST(StructureTest, IrregularFlowDetection) {
  auto p = parse(
      "      program t\n"
      "      goto 10\n"
      "   10 continue\n"
      "      end\n");
  auto& stmts = p->main()->stmts();
  EXPECT_TRUE(has_irregular_flow(stmts.first(), stmts.last()));
}

TEST(StructureTest, ClassicDoTerminatorIsNotIrregular) {
  // The label on a classic DO terminator is not a goto target.
  auto p = parse(
      "      program t\n"
      "      do 100 i = 1, 10\n"
      "      x = 1.0\n"
      "  100 continue\n"
      "      end\n");
  auto& stmts = p->main()->stmts();
  EXPECT_FALSE(has_irregular_flow(stmts.first(), stmts.last()));
}

TEST(StructureTest, HasCalls) {
  auto p = parse(
      "      program t\n"
      "      x = f(1.0)\n"
      "      end\n");
  auto& stmts = p->main()->stmts();
  EXPECT_TRUE(has_calls(stmts.first(), stmts.last()));

  auto q = parse(
      "      program t\n"
      "      x = sqrt(1.0)\n"  // intrinsic: not a user call
      "      end\n");
  auto& qs = q->main()->stmts();
  EXPECT_FALSE(has_calls(qs.first(), qs.last()));
}

TEST(StructureTest, LoopInvariance) {
  auto p = parse(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, n\n"
      "        x = x + 1.0\n"
      "        a(i) = n*2 + m\n"
      "      end do\n"
      "      end\n");
  DoStmt* loop = p->main()->stmts().loops()[0];
  SymbolTable& st = p->main()->symtab();
  ExprPtr inv = parse_expression("n*2 + m", st);
  ExprPtr varying = parse_expression("x + i", st);
  EXPECT_TRUE(is_loop_invariant(*inv, loop));
  EXPECT_FALSE(is_loop_invariant(*varying, loop));
}

TEST(StructureTest, LiveAfterLoop) {
  auto p = parse(
      "      program t\n"
      "      do i = 1, n\n"
      "        x = i*2\n"
      "        y = i*3\n"
      "      end do\n"
      "      z = x + 1\n"  // x live-out; y is not
      "      y = 0\n"
      "      end\n");
  DoStmt* loop = p->main()->stmts().loops()[0];
  SymbolTable& st = p->main()->symtab();
  EXPECT_TRUE(is_live_after(loop, st.lookup("x")));
  EXPECT_FALSE(is_live_after(loop, st.lookup("y")));
}

TEST(StructureTest, LoopsPostorderInnermostFirst) {
  auto p = parse(
      "      program t\n"
      "      do i = 1, 2\n"
      "        do j = 1, 2\n"
      "          x = 1\n"
      "        end do\n"
      "      end do\n"
      "      do k = 1, 2\n"
      "        x = 2\n"
      "      end do\n"
      "      end\n");
  auto post = loops_postorder(p->main()->stmts());
  ASSERT_EQ(post.size(), 3u);
  EXPECT_EQ(post[0]->index()->name(), "j");
}

TEST(StructureTest, EnclosingLoops) {
  auto p = parse(
      "      program t\n"
      "      do i = 1, 2\n"
      "        do j = 1, 2\n"
      "          x = 1\n"
      "        end do\n"
      "      end do\n"
      "      end\n");
  auto loops = p->main()->stmts().loops();
  Statement* body = loops[1]->next();
  auto enc = enclosing_loops(body);
  ASSERT_EQ(enc.size(), 2u);
  EXPECT_EQ(enc[0]->index()->name(), "i");
  EXPECT_EQ(enc[1]->index()->name(), "j");
}

}  // namespace
}  // namespace polaris
