#include "analysis/cfg.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace polaris {
namespace {

struct Fix {
  std::unique_ptr<Program> prog;
  ProgramUnit* unit;

  explicit Fix(const std::string& src) : prog(parse_program(src)) {
    unit = prog->main();
  }
  Statement* stmt(size_t i) {
    Statement* s = unit->stmts().first();
    while (i--) s = s->next();
    return s;
  }
};

TEST(CfgTest, StraightLine) {
  Fix f(
      "      program t\n"
      "      x = 1.0\n"
      "      y = 2.0\n"
      "      end\n");
  ControlFlowGraph cfg(*f.unit);
  EXPECT_EQ(cfg.entry(), f.stmt(0));
  ASSERT_EQ(cfg.successors(f.stmt(0)).size(), 1u);
  EXPECT_EQ(cfg.successors(f.stmt(0))[0], f.stmt(1));
  EXPECT_TRUE(cfg.exits(f.stmt(1)));
  EXPECT_EQ(cfg.predecessors(f.stmt(1))[0], f.stmt(0));
}

TEST(CfgTest, DoLoopEdges) {
  Fix f(
      "      program t\n"
      "      do i = 1, 10\n"
      "        x = 1.0\n"
      "      end do\n"
      "      y = 2.0\n"
      "      end\n");
  ControlFlowGraph cfg(*f.unit);
  Statement* d = f.stmt(0);
  Statement* body = f.stmt(1);
  Statement* enddo = f.stmt(2);
  Statement* after = f.stmt(3);
  // DO: enter body or bypass (zero trips).
  auto ds = cfg.successors(d);
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds[0], body);
  EXPECT_EQ(ds[1], after);
  // ENDDO: back edge + exit.
  auto es = cfg.successors(enddo);
  ASSERT_EQ(es.size(), 2u);
  EXPECT_EQ(es[0], body);
  EXPECT_EQ(es[1], after);
  EXPECT_TRUE(cfg.reaches(body, body));  // through the back edge
}

TEST(CfgTest, IfChainDispatch) {
  Fix f(
      "      program t\n"
      "      if (x .gt. 0.0) then\n"
      "        a = 1.0\n"
      "      else if (x .lt. 0.0) then\n"
      "        a = 2.0\n"
      "      else\n"
      "        a = 3.0\n"
      "      end if\n"
      "      b = 4.0\n"
      "      end\n");
  ControlFlowGraph cfg(*f.unit);
  Statement* ifs = f.stmt(0);
  Statement* then_body = f.stmt(1);
  Statement* elif = f.stmt(2);
  Statement* elif_body = f.stmt(3);
  Statement* els = f.stmt(4);
  Statement* else_body = f.stmt(5);
  Statement* endif = f.stmt(6);
  Statement* after = f.stmt(7);

  auto s_if = cfg.successors(ifs);
  ASSERT_EQ(s_if.size(), 2u);
  EXPECT_EQ(s_if[0], then_body);
  EXPECT_EQ(s_if[1], elif);
  // A completed arm joins at END IF, not the next arm header.
  ASSERT_EQ(cfg.successors(then_body).size(), 1u);
  EXPECT_EQ(cfg.successors(then_body)[0], endif);
  auto s_elif = cfg.successors(elif);
  ASSERT_EQ(s_elif.size(), 2u);
  EXPECT_EQ(s_elif[0], elif_body);
  EXPECT_EQ(s_elif[1], els);
  EXPECT_EQ(cfg.successors(els)[0], else_body);
  EXPECT_EQ(cfg.successors(endif)[0], after);
}

TEST(CfgTest, GotoEdges) {
  Fix f(
      "      program t\n"
      "      i = 0\n"
      "   10 i = i + 1\n"
      "      if (i .lt. 3) goto 10\n"
      "      y = 1.0\n"
      "      end\n");
  ControlFlowGraph cfg(*f.unit);
  // Find the GOTO (inside the desugared logical IF block).
  Statement* the_goto = nullptr;
  for (Statement* s : f.unit->stmts())
    if (s->kind() == StmtKind::Goto) the_goto = s;
  ASSERT_NE(the_goto, nullptr);
  Statement* target = f.unit->stmts().find_label(10);
  ASSERT_EQ(cfg.successors(the_goto).size(), 1u);
  EXPECT_EQ(cfg.successors(the_goto)[0], target);
  EXPECT_TRUE(cfg.reaches(target, target));  // the goto cycle
}

TEST(CfgTest, ReturnAndStopExit) {
  Fix f(
      "      program t\n"
      "      if (x .gt. 0.0) then\n"
      "        stop\n"
      "      end if\n"
      "      y = 1.0\n"
      "      end\n");
  ControlFlowGraph cfg(*f.unit);
  Statement* stop = f.stmt(1);
  ASSERT_EQ(stop->kind(), StmtKind::Stop);
  EXPECT_TRUE(cfg.exits(stop));
  EXPECT_TRUE(cfg.successors(stop).empty());
}

TEST(CfgTest, ReachableCoversStructuredProgram) {
  Fix f(
      "      program t\n"
      "      do i = 1, 3\n"
      "        if (i .gt. 1) then\n"
      "          x = 1.0\n"
      "        end if\n"
      "      end do\n"
      "      end\n");
  ControlFlowGraph cfg(*f.unit);
  EXPECT_EQ(cfg.reachable().size(), f.unit->stmts().size());
}

TEST(CfgTest, UnreachableAfterGoto) {
  Fix f(
      "      program t\n"
      "      goto 10\n"
      "      x = 1.0\n"
      "   10 continue\n"
      "      end\n");
  ControlFlowGraph cfg(*f.unit);
  auto reach = cfg.reachable();
  // The statement between GOTO and its target is dead.
  Statement* dead = f.stmt(1);
  EXPECT_EQ(std::find(reach.begin(), reach.end(), dead), reach.end());
}

TEST(CfgTest, EmptyLoopBody) {
  Fix f(
      "      program t\n"
      "      do i = 1, 3\n"
      "      end do\n"
      "      end\n");
  ControlFlowGraph cfg(*f.unit);
  Statement* d = f.stmt(0);
  // Both the enter and bypass edges resolve around the empty body.
  EXPECT_FALSE(cfg.successors(d).empty());
  EXPECT_EQ(cfg.reachable().size(), 2u);
}

}  // namespace
}  // namespace polaris
