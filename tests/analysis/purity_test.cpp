// Pure-function detection and its effect on DOALL recognition.
#include "analysis/purity.h"

#include <gtest/gtest.h>

#include "driver/compiler.h"
#include "interp/interp.h"
#include "parser/parser.h"

namespace polaris {
namespace {

TEST(PurityTest, SimpleFunctionIsPure) {
  auto p = parse_program(
      "      program t\n"
      "      y = sq(2.0)\n"
      "      end\n"
      "      real function sq(x)\n"
      "      t = x*x\n"
      "      sq = t\n"
      "      end\n");
  auto pure = pure_functions(*p);
  EXPECT_EQ(pure.count("sq"), 1u);
}

TEST(PurityTest, WritingFormalIsImpure) {
  auto p = parse_program(
      "      program t\n"
      "      y = bad(x)\n"
      "      end\n"
      "      real function bad(a)\n"
      "      a = 0.0\n"
      "      bad = 1.0\n"
      "      end\n");
  EXPECT_EQ(pure_functions(*p).count("bad"), 0u);
}

TEST(PurityTest, CommonAccessIsImpure) {
  auto p = parse_program(
      "      program t\n"
      "      y = g(x)\n"
      "      end\n"
      "      real function g(a)\n"
      "      common /st/ w\n"
      "      g = a + w\n"
      "      end\n");
  EXPECT_EQ(pure_functions(*p).count("g"), 0u);
}

TEST(PurityTest, TransitivePurity) {
  auto p = parse_program(
      "      program t\n"
      "      y = outer(2.0)\n"
      "      end\n"
      "      real function outer(x)\n"
      "      outer = inner(x) + 1.0\n"
      "      end\n"
      "      real function inner(x)\n"
      "      inner = x*0.5\n"
      "      end\n");
  auto pure = pure_functions(*p);
  EXPECT_EQ(pure.count("outer"), 1u);
  EXPECT_EQ(pure.count("inner"), 1u);
}

TEST(PurityTest, ImpurityPropagatesUpTheCallGraph) {
  auto p = parse_program(
      "      program t\n"
      "      y = outer(2.0)\n"
      "      end\n"
      "      real function outer(x)\n"
      "      outer = dirty(x) + 1.0\n"
      "      end\n"
      "      real function dirty(x)\n"
      "      common /st/ w\n"
      "      dirty = x + w\n"
      "      end\n");
  auto pure = pure_functions(*p);
  EXPECT_EQ(pure.count("outer"), 0u);
  EXPECT_EQ(pure.count("dirty"), 0u);
}

TEST(PurityTest, PureCallInLoopParallelizes) {
  // The function cannot be inlined (functions are not), but it is pure:
  // the loop parallelizes anyway and semantics are preserved.
  const char* src =
      "      program t\n"
      "      real a(500), b(500)\n"
      "      do i = 1, 500\n"
      "        b(i) = mod(i, 9)*0.5\n"
      "      end do\n"
      "      do i = 1, 500\n"
      "        a(i) = smooth(b(i)) + 1.0\n"
      "      end do\n"
      "      print *, a(1), a(500)\n"
      "      end\n"
      "      real function smooth(x)\n"
      "      t = x*0.25\n"
      "      smooth = t + x*0.5\n"
      "      end\n";
  Compiler compiler(CompilerMode::Polaris);
  CompileReport report;
  auto prog = compiler.compile(src, &report);
  int parallel_top = 0;
  for (const LoopReport& lr : report.loops)
    if (lr.unit == "t" && lr.depth == 0 && lr.parallel) ++parallel_top;
  EXPECT_EQ(parallel_top, 2);

  auto ref = parse_program(src);
  auto ref_run = run_program(*ref, MachineConfig{});
  MachineConfig cfg;
  cfg.processors = 8;
  auto run = run_program(*prog, cfg);
  EXPECT_EQ(ref_run.output, run.output);
  EXPECT_GT(run.clock.speedup(), 3.0);
}

TEST(PurityTest, WholeArrayActualOfWrittenArrayBlocks) {
  // f reads arbitrary elements of the array the loop writes: must stay
  // serial even though f itself is pure.
  const char* src =
      "      program t\n"
      "      real a(100)\n"
      "      do i = 2, 99\n"
      "        a(i) = probe(a, i)\n"
      "      end do\n"
      "      print *, a(50)\n"
      "      end\n"
      "      real function probe(v, i)\n"
      "      real v(100)\n"
      "      probe = v(i - 1)*0.5\n"
      "      end\n";
  Compiler compiler(CompilerMode::Polaris);
  CompileReport report;
  auto prog = compiler.compile(src, &report);
  for (const LoopReport& lr : report.loops) {
    if (lr.unit == "t") {
      EXPECT_FALSE(lr.parallel);
    }
  }

  auto ref = parse_program(src);
  auto ref_run = run_program(*ref, MachineConfig{});
  MachineConfig cfg;
  cfg.processors = 8;
  auto run = run_program(*prog, cfg);
  EXPECT_EQ(ref_run.output, run.output);
}

TEST(PurityTest, DisabledInBaseline) {
  const char* src =
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, 100\n"
      "        a(i) = sq(i*1.0)\n"
      "      end do\n"
      "      print *, a(7)\n"
      "      end\n"
      "      real function sq(x)\n"
      "      sq = x*x\n"
      "      end\n";
  Compiler compiler(CompilerMode::Baseline);
  CompileReport report;
  compiler.compile(src, &report);
  for (const LoopReport& lr : report.loops) {
    if (lr.unit == "t") {
      EXPECT_FALSE(lr.parallel);
    }
  }
}

}  // namespace
}  // namespace polaris
