#include "ir/symbol.h"

#include <gtest/gtest.h>

#include "ir/build.h"

namespace polaris {
namespace {

TEST(SymbolTest, NamesCanonicalizedToLowerCase) {
  SymbolTable t;
  Symbol* s = t.declare("FooBar", Type::real(), SymbolKind::Variable);
  EXPECT_EQ(s->name(), "foobar");
  EXPECT_EQ(t.lookup("FOOBAR"), s);
  EXPECT_EQ(t.lookup("foobar"), s);
}

TEST(SymbolTest, DuplicateDeclarationAsserts) {
  SymbolTable t;
  t.declare("x", Type::real(), SymbolKind::Variable);
  EXPECT_THROW(t.declare("X", Type::integer(), SymbolKind::Variable),
               InternalError);
}

TEST(SymbolTest, GetOrDeclare) {
  SymbolTable t;
  Symbol* a = t.get_or_declare("a", Type::integer());
  Symbol* b = t.get_or_declare("a", Type::real());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->type(), Type::integer());  // first declaration wins
}

TEST(SymbolTest, FreshNamesAvoidCollisions) {
  SymbolTable t;
  t.declare("tmp", Type::real(), SymbolKind::Variable);
  t.declare("tmp0", Type::real(), SymbolKind::Variable);
  Symbol* f = t.fresh("tmp", Type::real());
  EXPECT_EQ(f->name(), "tmp1");
}

TEST(SymbolTest, DimsAndRank) {
  SymbolTable t;
  Symbol* a = t.declare("a", Type::real(), SymbolKind::Variable);
  EXPECT_FALSE(a->is_array());
  std::vector<Dimension> dims;
  dims.emplace_back(nullptr, ib::ic(10));
  dims.emplace_back(ib::ic(0), ib::ic(20));
  a->set_dims(std::move(dims));
  EXPECT_TRUE(a->is_array());
  EXPECT_EQ(a->rank(), 2);
  EXPECT_EQ(a->dims()[1].lower->to_string(), "0");
}

TEST(SymbolTest, RemoveDropsSymbol) {
  SymbolTable t;
  Symbol* a = t.declare("a", Type::real(), SymbolKind::Variable);
  t.declare("b", Type::real(), SymbolKind::Variable);
  EXPECT_EQ(t.size(), 2u);
  t.remove(a);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.lookup("a"), nullptr);
  EXPECT_NE(t.lookup("b"), nullptr);
}

TEST(SymbolTest, RemoveForeignSymbolAsserts) {
  SymbolTable t1, t2;
  Symbol* a = t1.declare("a", Type::real(), SymbolKind::Variable);
  t2.declare("a", Type::real(), SymbolKind::Variable);
  EXPECT_THROW(t2.remove(a), InternalError);
}

TEST(SymbolTest, DeclarationOrderPreserved) {
  SymbolTable t;
  t.declare("z", Type::real(), SymbolKind::Variable);
  t.declare("a", Type::real(), SymbolKind::Variable);
  t.declare("m", Type::real(), SymbolKind::Variable);
  ASSERT_EQ(t.symbols().size(), 3u);
  EXPECT_EQ(t.symbols()[0]->name(), "z");
  EXPECT_EQ(t.symbols()[1]->name(), "a");
  EXPECT_EQ(t.symbols()[2]->name(), "m");
}

TEST(SymbolTest, ParameterValueOwned) {
  SymbolTable t;
  Symbol* n = t.declare("n", Type::integer(), SymbolKind::Parameter);
  n->set_param_value(ib::ic(100));
  ASSERT_NE(n->param_value(), nullptr);
  EXPECT_EQ(n->param_value()->to_string(), "100");
}

TEST(SymbolTest, CommonBlockMembership) {
  SymbolTable t;
  Symbol* a = t.declare("a", Type::real(), SymbolKind::Variable);
  EXPECT_FALSE(a->in_common());
  a->set_common_block("blk");
  EXPECT_TRUE(a->in_common());
  EXPECT_EQ(a->common_block(), "blk");
}

TEST(SymbolTest, UniqueIds) {
  SymbolTable t;
  Symbol* a = t.declare("a", Type::real(), SymbolKind::Variable);
  Symbol* b = t.declare("b", Type::real(), SymbolKind::Variable);
  EXPECT_NE(a->id(), b->id());
}

}  // namespace
}  // namespace polaris
