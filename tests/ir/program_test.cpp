#include "ir/program.h"

#include <gtest/gtest.h>

#include "ir/build.h"

namespace polaris {
namespace {

std::unique_ptr<ProgramUnit> make_sub(const std::string& name) {
  auto unit = std::make_unique<ProgramUnit>(UnitKind::Subroutine, name);
  Symbol* n = unit->symtab().declare("n", Type::integer(),
                                     SymbolKind::Variable);
  unit->add_formal(n);
  Symbol* a = unit->symtab().declare("a", Type::real(), SymbolKind::Variable);
  std::vector<Dimension> dims;
  dims.emplace_back(nullptr, ib::var(n));  // a(n): bound references a formal
  a->set_dims(std::move(dims));
  unit->add_formal(a);
  Symbol* i = unit->symtab().declare("i", Type::integer(),
                                     SymbolKind::Variable);
  std::vector<StmtPtr> frag;
  frag.push_back(std::make_unique<DoStmt>(i, ib::ic(1), ib::var(n), nullptr));
  frag.push_back(
      std::make_unique<AssignStmt>(ib::aref(a, ib::var(i)), ib::rc(0.0)));
  frag.push_back(std::make_unique<EndDoStmt>());
  unit->stmts().splice_back(std::move(frag));
  return unit;
}

TEST(ProgramTest, AddAndFindUnits) {
  Program p;
  p.add_unit(std::make_unique<ProgramUnit>(UnitKind::Program, "main"));
  p.add_unit(make_sub("init"));
  EXPECT_NE(p.find("main"), nullptr);
  EXPECT_NE(p.find("INIT"), nullptr);
  EXPECT_EQ(p.find("other"), nullptr);
  EXPECT_EQ(p.main()->name(), "main");
}

TEST(ProgramTest, DuplicateUnitAsserts) {
  Program p;
  p.add_unit(std::make_unique<ProgramUnit>(UnitKind::Program, "main"));
  EXPECT_THROW(
      p.add_unit(std::make_unique<ProgramUnit>(UnitKind::Subroutine, "MAIN")),
      InternalError);
}

TEST(ProgramTest, MainAssertsWhenMissing) {
  Program p;
  p.add_unit(make_sub("init"));
  EXPECT_THROW(p.main(), InternalError);
}

TEST(ProgramTest, MergeTransfersUnits) {
  Program p1, p2;
  p1.add_unit(std::make_unique<ProgramUnit>(UnitKind::Program, "main"));
  p2.add_unit(make_sub("init"));
  p1.merge(std::move(p2));
  EXPECT_NE(p1.find("init"), nullptr);
}

TEST(ProgramTest, CloneRemapsSymbols) {
  auto unit = make_sub("init");
  auto copy = unit->clone("init_t");
  EXPECT_EQ(copy->name(), "init_t");
  ASSERT_EQ(copy->formals().size(), 2u);

  // Symbols in the clone are distinct objects with the same names.
  Symbol* orig_n = unit->symtab().lookup("n");
  Symbol* copy_n = copy->symtab().lookup("n");
  ASSERT_NE(copy_n, nullptr);
  EXPECT_NE(copy_n, orig_n);
  EXPECT_TRUE(copy_n->is_formal());

  // The array dimension a(n) must reference the *cloned* n.
  Symbol* copy_a = copy->symtab().lookup("a");
  ASSERT_NE(copy_a, nullptr);
  ASSERT_TRUE(copy_a->is_array());
  const Expression* bound = copy_a->dims()[0].upper.get();
  ASSERT_NE(bound, nullptr);
  ASSERT_EQ(bound->kind(), ExprKind::VarRef);
  EXPECT_EQ(static_cast<const VarRef*>(bound)->symbol(), copy_n);

  // Statements remapped: DO index symbol and array base belong to the clone.
  auto loops = copy->stmts().loops();
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0]->index(), copy->symtab().lookup("i"));
  EXPECT_EQ(loops[0]->follow()->header(), loops[0]);

  // Mutating the clone leaves the original untouched.
  EXPECT_EQ(unit->stmts().size(), 3u);
  copy->stmts().remove_range(copy->stmts().first(), copy->stmts().last());
  EXPECT_EQ(unit->stmts().size(), 3u);
}

TEST(ProgramTest, MaxLabel) {
  auto unit = std::make_unique<ProgramUnit>(UnitKind::Program, "main");
  Symbol* x = unit->symtab().declare("x", Type::real(), SymbolKind::Variable);
  auto s1 = std::make_unique<AssignStmt>(ib::var(x), ib::ic(1));
  s1->set_label(100);
  unit->stmts().push_back(std::move(s1));
  auto s2 = std::make_unique<AssignStmt>(ib::var(x), ib::ic(2));
  s2->set_label(30);
  unit->stmts().push_back(std::move(s2));
  EXPECT_EQ(unit->max_label(), 100);
}

TEST(ProgramTest, FunctionResultSymbol) {
  auto unit = std::make_unique<ProgramUnit>(UnitKind::Function, "f");
  Symbol* r = unit->symtab().declare("f", Type::real(), SymbolKind::Variable);
  unit->set_result(r);
  auto copy = unit->clone("f_t");
  EXPECT_EQ(copy->result(), copy->symtab().lookup("f"));
  EXPECT_NE(copy->result(), r);
}

}  // namespace
}  // namespace polaris
