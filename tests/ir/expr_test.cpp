#include "ir/expr.h"

#include <gtest/gtest.h>

#include "ir/build.h"

namespace polaris {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  SymbolTable symtab;
  Symbol* i = symtab.declare("i", Type::integer(), SymbolKind::Variable);
  Symbol* n = symtab.declare("n", Type::integer(), SymbolKind::Variable);
  Symbol* a = [this] {
    Symbol* s = symtab.declare("a", Type::real(), SymbolKind::Variable);
    std::vector<Dimension> dims;
    dims.emplace_back(nullptr, ib::ic(100));
    s->set_dims(std::move(dims));
    return s;
  }();
};

TEST_F(ExprTest, StructuralEquality) {
  ExprPtr e1 = ib::add(ib::var(i), ib::ic(1));
  ExprPtr e2 = ib::add(ib::var(i), ib::ic(1));
  ExprPtr e3 = ib::add(ib::var(n), ib::ic(1));
  EXPECT_TRUE(e1->equals(*e2));
  EXPECT_FALSE(e1->equals(*e3));
}

TEST_F(ExprTest, EqualityDistinguishesOperators) {
  ExprPtr e1 = ib::add(ib::var(i), ib::ic(1));
  ExprPtr e2 = ib::sub(ib::var(i), ib::ic(1));
  EXPECT_FALSE(e1->equals(*e2));
}

TEST_F(ExprTest, CloneIsDeepAndEqual) {
  ExprPtr e = ib::mul(ib::add(ib::var(i), ib::ic(2)),
                      ib::aref(a, ib::var(i)));
  ExprPtr c = e->clone();
  EXPECT_TRUE(e->equals(*c));
  EXPECT_NE(e.get(), c.get());
  // Mutating the clone must not affect the original.
  *c->children()[0] = ib::ic(7);
  EXPECT_FALSE(e->equals(*c));
}

TEST_F(ExprTest, HashConsistentWithEquality) {
  ExprPtr e1 = ib::add(ib::mul(ib::var(n), ib::var(i)), ib::ic(3));
  ExprPtr e2 = e1->clone();
  EXPECT_EQ(e1->hash(), e2->hash());
}

TEST_F(ExprTest, PrintWithMinimalParens) {
  ExprPtr e = ib::mul(ib::add(ib::var(i), ib::ic(1)), ib::var(n));
  EXPECT_EQ(e->to_string(), "(i+1)*n");
  ExprPtr f = ib::add(ib::mul(ib::var(i), ib::var(n)), ib::ic(1));
  EXPECT_EQ(f->to_string(), "i*n+1");
}

TEST_F(ExprTest, PrintPowerAndComparison) {
  ExprPtr e = ib::le(ib::pow(ib::var(n), ib::ic(2)), ib::var(i));
  EXPECT_EQ(e->to_string(), "n**2.le.i");
}

TEST_F(ExprTest, PrintSubtractionNeedsRightParens) {
  // a - (b - c) must keep its parentheses.
  Symbol* b = symtab.declare("b", Type::real(), SymbolKind::Variable);
  Symbol* cc = symtab.declare("c", Type::real(), SymbolKind::Variable);
  ExprPtr e = ib::sub(ib::var(n), ib::sub(ib::var(b), ib::var(cc)));
  EXPECT_EQ(e->to_string(), "n-(b-c)");
}

TEST_F(ExprTest, TypePromotion) {
  ExprPtr e = ib::add(ib::var(i), ib::rc(1.5));
  EXPECT_EQ(e->type(), Type::real());
  ExprPtr d = ib::mul(ib::rc(1.0, true), ib::var(i));
  EXPECT_EQ(d->type(), Type::double_precision());
  ExprPtr cmp = ib::lt(ib::var(i), ib::var(n));
  EXPECT_EQ(cmp->type(), Type::logical());
}

TEST_F(ExprTest, ReferencesFindsSymbols) {
  ExprPtr e = ib::add(ib::aref(a, ib::var(i)), ib::ic(1));
  EXPECT_TRUE(e->references(a));
  EXPECT_TRUE(e->references(i));
  EXPECT_FALSE(e->references(n));
}

TEST_F(ExprTest, WalkVisitsAllNodes) {
  ExprPtr e = ib::add(ib::mul(ib::var(i), ib::var(n)), ib::ic(1));
  int count = 0;
  walk(*e, [&](const Expression&) { ++count; });
  EXPECT_EQ(count, 5);
}

TEST_F(ExprTest, ReplaceAllSubtrees) {
  // replace i*n by 42 in (i*n) + (i*n)
  ExprPtr e = ib::add(ib::mul(ib::var(i), ib::var(n)),
                      ib::mul(ib::var(i), ib::var(n)));
  ExprPtr from = ib::mul(ib::var(i), ib::var(n));
  ExprPtr to = ib::ic(42);
  EXPECT_EQ(replace_all(e, *from, *to), 2);
  EXPECT_EQ(e->to_string(), "42+42");
}

TEST_F(ExprTest, ReplaceVarSubstitutesScalarUses) {
  ExprPtr e = ib::add(ib::var(i), ib::aref(a, ib::var(i)));
  ExprPtr closed = ib::add(ib::var(n), ib::ic(1));
  EXPECT_EQ(replace_var(e, i, *closed), 2);
  EXPECT_EQ(e->to_string(), "n+1+a(n+1)");
}

TEST_F(ExprTest, ArrayRefRequiresSubscripts) {
  std::vector<ExprPtr> empty;
  EXPECT_THROW(std::make_unique<ArrayRef>(a, std::move(empty)),
               InternalError);
}

TEST_F(ExprTest, NegativeConstantsParenthesized) {
  ExprPtr e = ib::ic(-3);
  EXPECT_EQ(e->to_string(), "(-3)");
}

}  // namespace
}  // namespace polaris
