// Structural IR verifier: each test deliberately corrupts one invariant and
// checks the verifier names it — without crashing on the broken IR.
#include "ir/verifier.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "ir/build.h"
#include "ir/program.h"

namespace polaris {

/// Test-only seam declared as a friend by Statement and StmtList: the
/// public API keeps links and the label map consistent, so detection paths
/// for genuinely corrupted IR are only reachable by poking the privates.
class VerifierTestPeer {
 public:
  static void set_prev(Statement* s, Statement* p) { s->prev_ = p; }
  static void set_outer(Statement* s, DoStmt* d) { s->outer_ = d; }
  static void set_list(Statement* s, StmtList* l) { s->list_ = l; }
  static void map_label(StmtList& list, int label, Statement* s) {
    list.labels_[label] = s;
  }
  static void set_size(StmtList& list, std::size_t n) { list.size_ = n; }
};

namespace {

bool has_rule(const std::vector<VerifierViolation>& vs,
              const std::string& rule) {
  return std::any_of(vs.begin(), vs.end(), [&](const VerifierViolation& v) {
    return v.rule == rule;
  });
}

/// program main containing `do i = 1, n / a(i) = 0.0 / enddo`.
std::unique_ptr<ProgramUnit> make_unit() {
  auto unit = std::make_unique<ProgramUnit>(UnitKind::Program, "main");
  Symbol* n =
      unit->symtab().declare("n", Type::integer(), SymbolKind::Variable);
  Symbol* a =
      unit->symtab().declare("a", Type::real(), SymbolKind::Variable);
  std::vector<Dimension> dims;
  dims.emplace_back(nullptr, ib::ic(100));
  a->set_dims(std::move(dims));
  Symbol* i =
      unit->symtab().declare("i", Type::integer(), SymbolKind::Variable);
  std::vector<StmtPtr> frag;
  frag.push_back(std::make_unique<AssignStmt>(ib::var(n), ib::ic(100)));
  frag.push_back(std::make_unique<DoStmt>(i, ib::ic(1), ib::var(n), nullptr));
  frag.push_back(
      std::make_unique<AssignStmt>(ib::aref(a, ib::var(i)), ib::rc(0.0)));
  frag.push_back(std::make_unique<EndDoStmt>());
  unit->stmts().splice_back(std::move(frag));
  return unit;
}

TEST(VerifierTest, CleanUnitHasNoViolations) {
  auto unit = make_unit();
  EXPECT_TRUE(verify_unit(*unit).empty());
}

TEST(VerifierTest, CleanProgramHasNoViolations) {
  Program p;
  p.add_unit(make_unit());
  EXPECT_TRUE(verify_program(p).empty());
}

TEST(VerifierTest, DanglingSymbolDetected) {
  auto unit = make_unit();
  // A symbol owned by a foreign table referenced from this unit's IR.
  SymbolTable foreign;
  Symbol* ghost =
      foreign.declare("ghost", Type::integer(), SymbolKind::Variable);
  unit->stmts().push_back(
      std::make_unique<AssignStmt>(ib::var(ghost), ib::ic(1)));
  auto vs = verify_unit(*unit);
  EXPECT_TRUE(has_rule(vs, "dangling-symbol")) << format_violations(vs);
}

TEST(VerifierTest, OrphanedStatementLinkDetected) {
  auto unit = make_unit();
  Statement* second = unit->stmts().first()->next();
  VerifierTestPeer::set_prev(second, nullptr);  // breaks prev/next symmetry
  auto vs = verify_unit(*unit);
  EXPECT_TRUE(has_rule(vs, "stmt-links")) << format_violations(vs);
}

TEST(VerifierTest, WrongOwnerDetected) {
  auto unit = make_unit();
  StmtList other;
  VerifierTestPeer::set_list(unit->stmts().first(), &other);
  auto vs = verify_unit(*unit);
  EXPECT_TRUE(has_rule(vs, "stmt-links")) << format_violations(vs);
}

TEST(VerifierTest, SizeMismatchDetected) {
  auto unit = make_unit();
  VerifierTestPeer::set_size(unit->stmts(), 99);
  auto vs = verify_unit(*unit);
  EXPECT_TRUE(has_rule(vs, "stmt-links")) << format_violations(vs);
}

TEST(VerifierTest, StaleLabelMapDetected) {
  auto unit = make_unit();
  Statement* first = unit->stmts().first();
  first->set_label(10);
  unit->stmts().revalidate();  // label map now knows 10 -> first
  first->set_label(20);        // direct setter bypasses the map
  auto vs = verify_unit(*unit);
  EXPECT_TRUE(has_rule(vs, "label")) << format_violations(vs);
}

TEST(VerifierTest, BogusLabelMapEntryDetected) {
  auto unit = make_unit();
  VerifierTestPeer::map_label(unit->stmts(), 30, unit->stmts().first());
  auto vs = verify_unit(*unit);
  EXPECT_TRUE(has_rule(vs, "label")) << format_violations(vs);
}

TEST(VerifierTest, UnresolvedGotoDetected) {
  auto unit = make_unit();
  unit->stmts().push_back(std::make_unique<GotoStmt>(999));
  auto vs = verify_unit(*unit);
  EXPECT_TRUE(has_rule(vs, "unresolved-label")) << format_violations(vs);
}

TEST(VerifierTest, CorruptedDoNestDetected) {
  auto unit = make_unit();
  // The assignment inside the loop claims it is not enclosed by any DO.
  Statement* body = nullptr;
  for (Statement* s : unit->stmts())
    if (s->kind() == StmtKind::Do) body = s->next();
  ASSERT_NE(body, nullptr);
  VerifierTestPeer::set_outer(body, nullptr);
  auto vs = verify_unit(*unit);
  EXPECT_TRUE(has_rule(vs, "do-nest")) << format_violations(vs);
}

TEST(VerifierTest, RankMismatchDetected) {
  auto unit = make_unit();
  Symbol* a = unit->symtab().lookup("a");
  // a is declared a(100): referencing a(1,2) is a rank violation.
  unit->stmts().push_back(std::make_unique<AssignStmt>(
      ib::aref(a, ib::ic(1), ib::ic(2)), ib::rc(0.0)));
  auto vs = verify_unit(*unit);
  EXPECT_TRUE(has_rule(vs, "rank-mismatch")) << format_violations(vs);
}

TEST(VerifierTest, WildcardInIrDetected) {
  auto unit = make_unit();
  Symbol* n = unit->symtab().lookup("n");
  unit->stmts().push_back(std::make_unique<AssignStmt>(
      ib::var(n), std::make_unique<Wildcard>("w")));
  auto vs = verify_unit(*unit);
  EXPECT_TRUE(has_rule(vs, "wildcard-in-ir")) << format_violations(vs);
}

TEST(VerifierTest, ProgramWithoutMainFlagged) {
  Program p;
  auto sub = std::make_unique<ProgramUnit>(UnitKind::Subroutine, "work");
  p.add_unit(std::move(sub));
  auto vs = verify_program(p);
  EXPECT_TRUE(has_rule(vs, "unit")) << format_violations(vs);
}

TEST(VerifierTest, ClonedUnitStaysClean) {
  auto unit = make_unit();
  // ParallelInfo annotations must be remapped by clone — a stale Symbol*
  // into the source unit would be a dangling-symbol violation here.
  for (Statement* s : unit->stmts()) {
    if (s->kind() != StmtKind::Do) continue;
    auto* d = static_cast<DoStmt*>(s);
    d->par.is_parallel = true;
    d->par.private_vars.push_back(unit->symtab().lookup("i"));
  }
  auto copy = unit->clone("main");
  unit.reset();  // destroy the source: any unmapped pointer now dangles
  auto vs = verify_unit(*copy);
  EXPECT_TRUE(vs.empty()) << format_violations(vs);
}

}  // namespace
}  // namespace polaris
