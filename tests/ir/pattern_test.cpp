// Tests for Wildcard pattern matching — the basis of Polaris's "Forbol"
// pattern-matching layer (paper Section 2) and the reduction/induction
// idiom recognition (Section 3.2).
#include <gtest/gtest.h>

#include "ir/build.h"
#include "ir/expr.h"

namespace polaris {
namespace {

class PatternTest : public ::testing::Test {
 protected:
  SymbolTable symtab;
  Symbol* i = symtab.declare("i", Type::integer(), SymbolKind::Variable);
  Symbol* j = symtab.declare("j", Type::integer(), SymbolKind::Variable);
  Symbol* sum = symtab.declare("sum", Type::real(), SymbolKind::Variable);
  Symbol* a = [this] {
    Symbol* s = symtab.declare("a", Type::real(), SymbolKind::Variable);
    std::vector<Dimension> dims;
    dims.emplace_back(nullptr, ib::ic(100));
    s->set_dims(std::move(dims));
    return s;
  }();
};

TEST_F(PatternTest, WildcardMatchesAnySubtree) {
  ExprPtr pattern = ib::add(ib::wild("x"), ib::ic(1));
  ExprPtr subject = ib::add(ib::mul(ib::var(i), ib::var(j)), ib::ic(1));
  Bindings b;
  ASSERT_TRUE(pattern->match(*subject, b));
  ASSERT_EQ(b.count("x"), 1u);
  EXPECT_EQ(b["x"]->to_string(), "i*j");
}

TEST_F(PatternTest, RepeatedWildcardRequiresEqualBindings) {
  // Pattern ?x + ?x matches i+i but not i+j.
  ExprPtr pattern = ib::add(ib::wild("x"), ib::wild("x"));
  ExprPtr good = ib::add(ib::var(i), ib::var(i));
  ExprPtr bad = ib::add(ib::var(i), ib::var(j));
  Bindings b1, b2;
  EXPECT_TRUE(pattern->match(*good, b1));
  EXPECT_FALSE(pattern->match(*bad, b2));
}

TEST_F(PatternTest, ReductionIdiom) {
  // The paper's reduction pattern: A(alpha) = A(alpha) + beta, recognized
  // by matching the rhs against aref + wildcard with consistent alpha.
  ExprPtr lhs = ib::aref(a, ib::var(i));
  ExprPtr rhs = ib::add(ib::aref(a, ib::var(i)), ib::mul(ib::var(j), ib::ic(2)));
  // Pattern: a(?alpha) + ?beta  against rhs, with lhs binding alpha first.
  ExprPtr lhs_pattern = ib::aref(a, ib::wild("alpha"));
  ExprPtr rhs_pattern = ib::add(ib::aref(a, ib::wild("alpha")), ib::wild("beta"));
  Bindings b;
  ASSERT_TRUE(lhs_pattern->match(*lhs, b));
  ASSERT_TRUE(rhs_pattern->match(*rhs, b));
  EXPECT_EQ(b["alpha"]->to_string(), "i");
  EXPECT_EQ(b["beta"]->to_string(), "j*2");
}

TEST_F(PatternTest, ReductionIdiomRejectsMismatchedSubscripts) {
  ExprPtr lhs = ib::aref(a, ib::var(i));
  ExprPtr rhs = ib::add(ib::aref(a, ib::var(j)), ib::ic(1));
  ExprPtr lhs_pattern = ib::aref(a, ib::wild("alpha"));
  ExprPtr rhs_pattern = ib::add(ib::aref(a, ib::wild("alpha")), ib::wild("beta"));
  Bindings b;
  ASSERT_TRUE(lhs_pattern->match(*lhs, b));
  EXPECT_FALSE(rhs_pattern->match(*rhs, b));
}

TEST_F(PatternTest, ConstrainedWildcard) {
  ExprPtr pattern = ib::wild("c", ExprKind::IntConst);
  ExprPtr icexp = ib::ic(5);
  ExprPtr vexp = ib::var(i);
  Bindings b1, b2;
  EXPECT_TRUE(pattern->match(*icexp, b1));
  EXPECT_FALSE(pattern->match(*vexp, b2));
}

TEST_F(PatternTest, InductionIdiom) {
  // K = K + <increment>: match rhs against ?k + ?inc with ?k bound to the
  // lhs variable.
  ExprPtr rhs = ib::add(ib::var(j), ib::var(i));
  ExprPtr pattern = ib::add(ib::var(j), ib::wild("inc"));
  Bindings b;
  ASSERT_TRUE(pattern->match(*rhs, b));
  EXPECT_EQ(b["inc"]->to_string(), "i");
}

TEST_F(PatternTest, MatchFailsAcrossDifferentOps) {
  ExprPtr pattern = ib::add(ib::wild("x"), ib::wild("y"));
  ExprPtr subject = ib::mul(ib::var(i), ib::var(j));
  Bindings b;
  EXPECT_FALSE(pattern->match(*subject, b));
}

TEST_F(PatternTest, WildcardInFunctionCall) {
  ExprPtr pattern = ib::call("max", [] {
    std::vector<ExprPtr> v;
    v.push_back(ib::wild("a"));
    v.push_back(ib::wild("b"));
    return v;
  }());
  ExprPtr subject = ib::call("max", [&] {
    std::vector<ExprPtr> v;
    v.push_back(ib::var(sum));
    v.push_back(ib::ic(0));
    return v;
  }());
  Bindings b;
  ASSERT_TRUE(pattern->match(*subject, b));
  EXPECT_EQ(b["a"]->to_string(), "sum");
}

TEST_F(PatternTest, WildcardPrintsWithQuestionMark) {
  EXPECT_EQ(ib::wild("beta")->to_string(), "?beta");
}

}  // namespace
}  // namespace polaris

#include "ir/pattern.h"

namespace polaris {
namespace {

class ForbolTest : public ::testing::Test {
 protected:
  SymbolTable symtab;
  Symbol* x = symtab.declare("x", Type::real(), SymbolKind::Variable);
  Symbol* y = symtab.declare("y", Type::real(), SymbolKind::Variable);
};

TEST_F(ForbolTest, InstantiateSplicesBindings) {
  Bindings b;
  ExprPtr vx = ib::var(x);
  b.emplace("a", vx.get());
  ExprPtr templ = ib::mul(ib::ic(2), ib::wild("a"));
  ExprPtr out = instantiate(*templ, b);
  EXPECT_EQ(out->to_string(), "2*x");
}

TEST_F(ForbolTest, InstantiateUnboundAsserts) {
  Bindings b;
  ExprPtr templ = ib::wild("missing");
  EXPECT_THROW(instantiate(*templ, b), InternalError);
}

TEST_F(ForbolTest, RewriteAllStrengthReduction) {
  // ?a + ?a -> 2*?a everywhere.
  ExprPtr e = ib::add(ib::add(ib::var(x), ib::var(x)),
                      ib::add(ib::var(y), ib::var(y)));
  ExprPtr pattern = ib::add(ib::wild("a"), ib::wild("a"));
  ExprPtr repl = ib::mul(ib::ic(2), ib::wild("a"));
  EXPECT_EQ(rewrite_all(e, *pattern, *repl), 2);
  EXPECT_EQ(e->to_string(), "2*x+2*y");
}

TEST_F(ForbolTest, RewriteOutermostFirst) {
  // (x + x) + (x + x) matches at the root; the rewritten tree is not
  // revisited, so exactly one rewrite happens.
  ExprPtr e = ib::add(ib::add(ib::var(x), ib::var(x)),
                      ib::add(ib::var(x), ib::var(x)));
  ExprPtr pattern = ib::add(ib::wild("a"), ib::wild("a"));
  ExprPtr repl = ib::mul(ib::ic(2), ib::wild("a"));
  EXPECT_EQ(rewrite_all(e, *pattern, *repl), 1);
  EXPECT_EQ(e->to_string(), "2*(x+x)");
}

TEST_F(ForbolTest, FindMatchPreOrder) {
  ExprPtr e = ib::mul(ib::add(ib::var(x), ib::ic(1)), ib::var(y));
  ExprPtr pattern = ib::add(ib::wild("a"), ib::wild("b"));
  Bindings b;
  const Expression* hit = find_match(*e, *pattern, &b);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(b["a"]->to_string(), "x");
  EXPECT_EQ(b["b"]->to_string(), "1");
  ExprPtr nomatch = ib::sub(ib::wild("a"), ib::wild("a"));
  EXPECT_EQ(find_match(*e, *nomatch, nullptr), nullptr);
}

}  // namespace
}  // namespace polaris
