// StmtList consistency-enforcement tests — the paper's Section 2 invariants:
// well-formed multiblock statements, automatic link maintenance, run-time
// errors on malformed manipulations.  Construction of multi-statement
// blocks goes through detached fragments (the paper's List<Statement>
// idiom); consistency is checked when a fragment is incorporated.
#include "ir/stmtlist.h"

#include <gtest/gtest.h>

#include "ir/build.h"

namespace polaris {
namespace {

class StmtListTest : public ::testing::Test {
 protected:
  SymbolTable symtab;
  Symbol* i = symtab.declare("i", Type::integer(), SymbolKind::Variable);
  Symbol* j = symtab.declare("j", Type::integer(), SymbolKind::Variable);
  Symbol* x = symtab.declare("x", Type::real(), SymbolKind::Variable);

  StmtPtr assign(Symbol* lhs, std::int64_t v) {
    return std::make_unique<AssignStmt>(ib::var(lhs), ib::ic(v));
  }
  StmtPtr make_do(Symbol* idx, std::int64_t lo, std::int64_t hi) {
    return std::make_unique<DoStmt>(idx, ib::ic(lo), ib::ic(hi), nullptr);
  }

  /// Splices a brace-list of statements into `l` as one fragment.
  void build(StmtList& l, std::vector<StmtPtr> frag) {
    l.splice_back(std::move(frag));
  }

  static std::vector<StmtPtr> frag() { return {}; }
  template <typename... Rest>
  static std::vector<StmtPtr> frag(StmtPtr first, Rest... rest) {
    std::vector<StmtPtr> v = frag(std::move(rest)...);
    v.insert(v.begin(), std::move(first));
    return v;
  }
};

TEST_F(StmtListTest, PushBackLinksAndCounts) {
  StmtList l;
  Statement* s1 = l.push_back(assign(x, 1));
  Statement* s2 = l.push_back(assign(x, 2));
  EXPECT_EQ(l.size(), 2u);
  EXPECT_EQ(l.first(), s1);
  EXPECT_EQ(l.last(), s2);
  EXPECT_EQ(s1->next(), s2);
  EXPECT_EQ(s2->prev(), s1);
  EXPECT_EQ(s2->next(), nullptr);
}

TEST_F(StmtListTest, IncrementalIllFormedConstructionIsRejected) {
  // Pushing a lone DO (without its ENDDO) violates well-formedness at the
  // incorporation boundary — the designed failure mode.
  StmtList l;
  EXPECT_THROW(l.push_back(make_do(i, 1, 10)), InternalError);
}

TEST_F(StmtListTest, DoFollowLinkDerived) {
  StmtList l;
  build(l, frag(make_do(i, 1, 10), assign(x, 1),
                std::make_unique<EndDoStmt>()));
  auto* d = static_cast<DoStmt*>(l.first());
  auto* e = static_cast<EndDoStmt*>(l.last());
  EXPECT_EQ(d->follow(), e);
  EXPECT_EQ(e->header(), d);
  EXPECT_EQ(d->body_first()->kind(), StmtKind::Assign);
}

TEST_F(StmtListTest, OuterLinksTrackInnermostLoop) {
  StmtList l;
  build(l, frag(make_do(i, 1, 10), make_do(j, 1, 10), assign(x, 1),
                std::make_unique<EndDoStmt>(), assign(x, 2),
                std::make_unique<EndDoStmt>()));
  auto* d1 = static_cast<DoStmt*>(l.first());
  auto* d2 = static_cast<DoStmt*>(d1->next());
  Statement* body = d2->next();
  Statement* between = d2->follow()->next();

  EXPECT_EQ(body->outer(), d2);
  EXPECT_EQ(between->outer(), d1);
  EXPECT_EQ(d2->outer(), d1);
  EXPECT_EQ(d1->outer(), nullptr);
  // An ENDDO belongs to the enclosing loop, not the one it closes.
  EXPECT_EQ(d2->follow()->outer(), d1);
  EXPECT_EQ(l.depth(body), 2);
}

TEST_F(StmtListTest, UnmatchedEndDoAsserts) {
  StmtList l;
  EXPECT_THROW(l.push_back(std::make_unique<EndDoStmt>()), InternalError);
}

TEST_F(StmtListTest, RemovingHalfOfDoPairAsserts) {
  StmtList l;
  build(l, frag(make_do(i, 1, 10), assign(x, 1),
                std::make_unique<EndDoStmt>()));
  // Deleting just the DO leaves an unmatched ENDDO -> consistency error.
  EXPECT_THROW(l.remove(l.first()), InternalError);
}

TEST_F(StmtListTest, RemoveRangeRequiresWellFormedBlock) {
  StmtList l;
  build(l, frag(make_do(i, 1, 10), assign(x, 1),
                std::make_unique<EndDoStmt>()));
  Statement* d = l.first();
  Statement* body = d->next();
  EXPECT_THROW(l.remove_range(d, body), InternalError);  // splits the pair
}

TEST_F(StmtListTest, RemoveRangeWholeLoopSucceeds) {
  StmtList l;
  build(l, frag(assign(x, 0), make_do(i, 1, 10), assign(x, 1),
                std::make_unique<EndDoStmt>(), assign(x, 2)));
  Statement* before = l.first();
  Statement* d = before->next();
  Statement* e = d->next()->next();
  Statement* after = l.last();
  l.remove_range(d, e);
  EXPECT_EQ(l.size(), 2u);
  EXPECT_EQ(before->next(), after);
}

TEST_F(StmtListTest, ExtractAndSpliceMovesBlocks) {
  StmtList l;
  build(l, frag(assign(x, 0), make_do(i, 1, 10), assign(x, 1),
                std::make_unique<EndDoStmt>(), assign(x, 2)));
  Statement* d = l.first()->next();
  Statement* e = d->next()->next();
  Statement* tail_stmt = l.last();

  std::vector<StmtPtr> block = l.extract_range(d, e);
  EXPECT_EQ(l.size(), 2u);
  EXPECT_EQ(block.size(), 3u);

  l.splice_after(tail_stmt, std::move(block));
  EXPECT_EQ(l.size(), 5u);
  EXPECT_EQ(l.last()->kind(), StmtKind::EndDo);
  // follow links must be re-derived after the splice
  auto* d2 = static_cast<DoStmt*>(tail_stmt->next());
  EXPECT_EQ(d2->kind(), StmtKind::Do);
  EXPECT_EQ(d2->follow(), l.last());
}

TEST_F(StmtListTest, SpliceBeforeInsertsFragmentInOrder) {
  StmtList l;
  build(l, frag(assign(x, 1), assign(x, 4)));
  Statement* pos = l.last();
  l.splice_before(pos, frag(assign(x, 2), assign(x, 3)));
  std::vector<std::string> texts;
  for (Statement* s : l) texts.push_back(s->to_string());
  EXPECT_EQ(texts, (std::vector<std::string>{"x = 1", "x = 2", "x = 3",
                                             "x = 4"}));
}

TEST_F(StmtListTest, CloneRangeDeepCopies) {
  StmtList l;
  build(l, frag(make_do(i, 1, 10), assign(x, 1),
                std::make_unique<EndDoStmt>()));
  std::vector<StmtPtr> copy = l.clone_range(l.first(), l.last());
  EXPECT_EQ(copy.size(), 3u);
  EXPECT_EQ(l.size(), 3u);  // original untouched
  EXPECT_NE(copy[0].get(), l.first());
  EXPECT_EQ(copy[0]->kind(), StmtKind::Do);
}

TEST_F(StmtListTest, IfChainLinksDerived) {
  StmtList l;
  build(l, frag(std::make_unique<IfStmt>(ib::lt(ib::var(i), ib::ic(5))),
                assign(x, 1),
                std::make_unique<ElseIfStmt>(ib::lt(ib::var(i), ib::ic(10))),
                assign(x, 2), std::make_unique<ElseStmt>(), assign(x, 3),
                std::make_unique<EndIfStmt>()));
  auto* ifs = static_cast<IfStmt*>(l.first());
  auto* elif = static_cast<ElseIfStmt*>(ifs->next_arm());
  ASSERT_NE(elif, nullptr);
  ASSERT_EQ(elif->kind(), StmtKind::ElseIf);
  auto* els = static_cast<ElseStmt*>(elif->next_arm());
  ASSERT_EQ(els->kind(), StmtKind::Else);
  auto* endif = static_cast<EndIfStmt*>(l.last());
  EXPECT_EQ(ifs->end(), endif);
  EXPECT_EQ(elif->end(), endif);
  EXPECT_EQ(els->end(), endif);
}

TEST_F(StmtListTest, NestedIfEndPointers) {
  StmtList l;
  build(l, frag(std::make_unique<IfStmt>(ib::lt(ib::var(i), ib::ic(5))),
                std::make_unique<IfStmt>(ib::lt(ib::var(j), ib::ic(5))),
                assign(x, 1), std::make_unique<EndIfStmt>(),
                std::make_unique<EndIfStmt>()));
  auto* outer_if = static_cast<IfStmt*>(l.first());
  auto* inner_if = static_cast<IfStmt*>(outer_if->next());
  EXPECT_EQ(outer_if->end(), l.last());
  EXPECT_EQ(inner_if->end(), l.last()->prev());
  // An IF with no ELSE arm: next_arm points at the ENDIF.
  EXPECT_EQ(inner_if->next_arm(), inner_if->end());
}

TEST_F(StmtListTest, ElseWithoutIfAsserts) {
  StmtList l;
  EXPECT_THROW(l.push_back(std::make_unique<ElseStmt>()), InternalError);
}

TEST_F(StmtListTest, DuplicateLabelsAssert) {
  StmtList l;
  auto s1 = assign(x, 1);
  s1->set_label(100);
  l.push_back(std::move(s1));
  auto s2 = assign(x, 2);
  s2->set_label(100);
  EXPECT_THROW(l.push_back(std::move(s2)), InternalError);
}

TEST_F(StmtListTest, FindLabel) {
  StmtList l;
  auto s = assign(x, 1);
  s->set_label(200);
  Statement* raw = l.push_back(std::move(s));
  EXPECT_EQ(l.find_label(200), raw);
  EXPECT_EQ(l.find_label(999), nullptr);
}

TEST_F(StmtListTest, LoopsAndBodyHelpers) {
  StmtList l;
  build(l, frag(make_do(i, 1, 10), make_do(j, 1, 10), assign(x, 1),
                std::make_unique<EndDoStmt>(),
                std::make_unique<EndDoStmt>()));
  auto loops = l.loops();
  ASSERT_EQ(loops.size(), 2u);
  DoStmt* d1 = loops[0];
  DoStmt* d2 = loops[1];

  auto inner = l.loops_in(d1);
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(inner[0], d2);

  auto body = l.body(d2);
  ASSERT_EQ(body.size(), 1u);
  EXPECT_EQ(body[0]->kind(), StmtKind::Assign);

  auto outer_body = l.body(d1);
  EXPECT_EQ(outer_body.size(), 3u);  // do j, assign, enddo
}

TEST_F(StmtListTest, CountSymbolUses) {
  StmtList l;
  build(l, frag(make_do(i, 1, 10),
                std::make_unique<AssignStmt>(
                    ib::var(x), ib::add(ib::var(i), ib::var(i))),
                std::make_unique<EndDoStmt>()));
  EXPECT_EQ(count_symbol_uses(l, i), 3);  // do index + two rhs uses
  EXPECT_EQ(count_symbol_uses(l, x), 1);
  EXPECT_EQ(count_symbol_uses(l, j), 0);
}

TEST_F(StmtListTest, ForEachExprSlot) {
  StmtList l;
  build(l, frag(make_do(i, 1, 10),
                std::make_unique<AssignStmt>(ib::var(x), ib::var(i)),
                std::make_unique<EndDoStmt>()));
  int slots = 0;
  for_each_expr_slot(l, nullptr, nullptr,
                     [&](Statement&, ExprPtr&) { ++slots; });
  // DO has init/limit/step, assignment has lhs/rhs.
  EXPECT_EQ(slots, 5);
}

}  // namespace
}  // namespace polaris
