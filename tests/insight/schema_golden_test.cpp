// Report-JSON schema stability: the `-report-json` document is the
// ingestion surface for polaris-insight, the bench harness, and external
// dashboards, so its *shape* — member names, member order, nesting — is
// pinned against a committed golden file.  A two-unit fixture compiled
// with a hostile poly-terms ceiling and an injected fault populates every
// section (loops, remarks, pass_timings, failures, degradations, stats,
// analysis_cache, resource); the skeleton extractor then zeroes all
// values so only structure is compared.  Refresh after an intentional
// schema change with:
//
//   POLARIS_UPDATE_GOLDEN=1 ./test_insight --gtest_filter='SchemaGolden.*'
//
// and commit the regenerated tests/data/report_schema_golden.json.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <string>

#include "driver/compiler.h"
#include "driver/report_json.h"
#include "insight/insight.h"
#include "support/json.h"

namespace polaris {
namespace {

// Two units: a triangular induction nest plus a reduction in the main
// program, a callee with its own reduction loop, and a print statement
// so structural, dependence, and io reason paths all appear.
const char* kFixture =
    "      program golden\n"
    "      real a(5050), s\n"
    "      integer i, j, k\n"
    "      k = 0\n"
    "      do i = 1, 100\n"
    "        do j = 1, i\n"
    "          k = k + 1\n"
    "          a(k) = i*0.5 + j\n"
    "        end do\n"
    "      end do\n"
    "      s = 0.0\n"
    "      call accum(a, s)\n"
    "      do i = 1, 5050\n"
    "        print *, a(i)\n"
    "      end do\n"
    "      end\n"
    "      subroutine accum(b, t)\n"
    "      real b(5050), t\n"
    "      integer i\n"
    "      do i = 1, 5050\n"
    "        t = t + b(i)\n"
    "      end do\n"
    "      end\n";

/// Reduces a JSON document to its shape: member names and order kept,
/// numbers -> 0, strings -> "", bools -> false, arrays -> [shape of the
/// first element].  The free-form remark "args" payload is emptied — its
/// members vary per remark kind and are not part of the schema contract.
JsonValue skeleton(const JsonValue& v, const std::string& key = "") {
  switch (v.kind) {
    case JsonValue::Kind::Object: {
      JsonValue obj = JsonValue::object();
      if (key == "args") return obj;
      for (const auto& [name, member] : v.members)
        obj.set(name, skeleton(member, name));
      return obj;
    }
    case JsonValue::Kind::Array: {
      JsonValue arr = JsonValue::array();
      if (!v.items.empty()) arr.add(skeleton(v.items[0], key));
      return arr;
    }
    case JsonValue::Kind::Number:
      return JsonValue::num(0);
    case JsonValue::Kind::String:
      return JsonValue::str("");
    case JsonValue::Kind::Bool:
      return JsonValue::boolean(false);
    case JsonValue::Kind::Null:
      break;
  }
  return JsonValue::null();
}

/// The closed reason-code set from DESIGN.md §7.  Growing it is a schema
/// change: update this list, the golden file, and insight::reason_class
/// together.
const std::set<std::string>& closed_reason_codes() {
  static const std::set<std::string> codes = {
      "empty-body",        "irregular-control-flow",
      "unresolved-call",   "loop-io",
      "scalar-recurrence", "carried-dependence",
      "strength-reduced",  "not-analyzed",
  };
  return codes;
}

JsonValue fixture_report() {
  Options opts = Options::polaris();
  // A hostile ceiling populates degradations/resource; an injected fault
  // populates failures.  Both are recovered, so the compile completes.
  opts.max_poly_terms = 2;
  opts.fault_inject = "constprop";
  CompileReport rep;
  Compiler(std::move(opts)).compile(kFixture, &rep);
  return parse_json(compile_report_json(rep));
}

JsonValue golden_document(const JsonValue& report) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", JsonValue::str("polaris-report-schema-golden"));
  doc.set("version", JsonValue::num(1));
  doc.set("report_skeleton", skeleton(report));
  JsonValue codes = JsonValue::array();
  for (const std::string& code : closed_reason_codes())
    codes.add(JsonValue::str(code));
  doc.set("reason_codes", std::move(codes));
  return doc;
}

// The fixture must keep exercising every report section — otherwise the
// golden skeleton silently stops covering it.
TEST(SchemaGolden, FixturePopulatesEverySection) {
  const JsonValue report = fixture_report();
  for (const char* section :
       {"loops", "remarks", "pass_timings", "failures", "degradations",
        "stats"}) {
    const JsonValue* arr = report.find(section);
    ASSERT_NE(arr, nullptr) << section;
    EXPECT_FALSE(arr->items.empty()) << section << " is empty";
  }
  ASSERT_NE(report.find("summary"), nullptr);
  ASSERT_NE(report.find("analysis_cache"), nullptr);
  const JsonValue* resource = report.find("resource");
  ASSERT_NE(resource, nullptr);
  ASSERT_NE(resource->find("trips"), nullptr);

  // Every reason code the fixture emits is in the closed set, and every
  // code in the closed set maps to a documented insight class.
  for (const JsonValue& l : report.find("loops")->items) {
    const std::string code = l.find("reason_code")->string_value;
    if (!code.empty()) {
      EXPECT_TRUE(closed_reason_codes().count(code)) << code;
    }
  }
  for (const std::string& code : closed_reason_codes())
    EXPECT_NE(insight::reason_class(code).compare(0, 8, "unknown:"), 0)
        << code;
}

// A fuel-budgeted compile must report the installed limit and the burn —
// the pipeline disarms the governor on exit, so the report captures the
// limit from the options, not the (reset) meter.
TEST(SchemaGolden, GovernedCompileReportsFuelAccounting) {
  Options opts = Options::polaris();
  opts.compile_budget_ms = 0.001;  // ~50 ticks: trips immediately
  CompileReport rep;
  Compiler(std::move(opts)).compile(kFixture, &rep);
  EXPECT_GT(rep.resource.fuel_limit, 0u);
  EXPECT_GT(rep.resource.fuel_spent, 0u);
  EXPECT_GT(rep.resource.trips_compile_fuel, 0u);
  EXPECT_EQ(rep.resource.trips_poly_terms, 0u);
}

TEST(SchemaGolden, ReportShapeMatchesCommittedGolden) {
  const JsonValue actual = golden_document(fixture_report());
  const std::string actual_text = actual.serialize();

  if (std::getenv("POLARIS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(POLARIS_SCHEMA_GOLDEN);
    ASSERT_TRUE(out) << "cannot write " << POLARIS_SCHEMA_GOLDEN;
    out << actual_text << "\n";
    GTEST_LOG_(INFO) << "refreshed " << POLARIS_SCHEMA_GOLDEN;
    return;
  }

  const std::string expected_text =
      parse_json_file(POLARIS_SCHEMA_GOLDEN).serialize();
  EXPECT_EQ(expected_text, actual_text)
      << "report-JSON shape drifted from tests/data/report_schema_golden."
         "json; if the schema change is intentional, refresh with "
         "POLARIS_UPDATE_GOLDEN=1 and bump kCompileReportSchemaVersion";
}

}  // namespace
}  // namespace polaris
