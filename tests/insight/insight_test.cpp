// The polaris-insight subsystem end to end: suite-profile aggregation
// invariants over the 16-code suite, the loop-ordinal identity scheme,
// and the diff classifier — every parallel→serial flip is a named hard
// failure, reason-class changes regress, threshold-gated drifts warn,
// and jobs=1 vs jobs=8 artifacts produce a zero-delta verdict.  The
// committed tests/data/suite_profile_baseline.json is diffed against a
// freshly built in-process profile so silent parallelization regressions
// fail CI (ROADMAP "regression sentinel").
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "driver/compiler.h"
#include "driver/report_json.h"
#include "insight/insight.h"
#include "suite/suite.h"
#include "support/assert.h"
#include "support/context.h"
#include "support/json.h"
#include "support/trace.h"

namespace polaris {
namespace {

namespace insight = polaris::insight;

/// Compiles one source and returns the parsed artifact triple exactly as
/// `polaris -profile-dir` would drop it: the report-JSON document, the
/// line-parsed remarks stream, and the Chrome trace document.
struct Artifacts {
  JsonValue report;
  std::vector<JsonValue> remarks;
  JsonValue trace;
};

Artifacts compile_artifacts(Options opts, const std::string& source) {
  CompileContext cc;
  // Arm the collector before compile so Compiler's own guard does not
  // claim ownership; an empty path means stop() returns the JSON without
  // touching the filesystem.
  cc.trace().start("");
  CompileReport rep;
  Compiler(std::move(opts)).compile(source, &rep, cc);
  const std::string trace_json = cc.trace().stop();

  Artifacts a;
  a.report = parse_json(compile_report_json(rep));
  std::ostringstream remarks;
  rep.diagnostics.print_remarks(remarks);
  a.remarks = parse_jsonl(remarks.str());
  a.trace = parse_json(trace_json);
  return a;
}

/// Builds the full 16-code suite profile in-process with `opts` (jobs is
/// taken from opts; each code compiles with the same options, mirroring
/// -profile-dir).
JsonValue suite_profile(const Options& opts) {
  insight::ProfileBuilder builder;
  for (const BenchProgram& bp : benchmark_suite()) {
    Artifacts a = compile_artifacts(opts, bp.source);
    builder.add_report(bp.name, a.report);
    builder.add_remarks(bp.name, a.remarks);
    builder.add_trace(bp.name, a.trace);
  }
  return builder.profile();
}

/// (code, unit, loop) → loop entry over a profile's loop inventory.
std::map<std::string, const JsonValue*> loop_index(const JsonValue& profile) {
  std::map<std::string, const JsonValue*> out;
  for (const JsonValue& l : profile.find("loops")->items) {
    const std::string key = l.find("code")->string_value + "/" +
                            l.find("unit")->string_value + "/" +
                            l.find("loop")->string_value;
    out[key] = &l;
  }
  return out;
}

bool loop_parallel(const JsonValue& l) {
  return l.find("parallel")->bool_value || l.find("speculative")->bool_value;
}

// --- reason classes --------------------------------------------------------

TEST(ReasonClass, ClosedSetMapsToDocumentedClasses) {
  EXPECT_EQ(insight::reason_class("empty-body"), "structural");
  EXPECT_EQ(insight::reason_class("irregular-control-flow"), "structural");
  EXPECT_EQ(insight::reason_class("loop-io"), "io");
  EXPECT_EQ(insight::reason_class("unresolved-call"), "interprocedural");
  EXPECT_EQ(insight::reason_class("scalar-recurrence"), "dependence");
  EXPECT_EQ(insight::reason_class("carried-dependence"), "dependence");
  EXPECT_EQ(insight::reason_class("strength-reduced"), "transformed");
  EXPECT_EQ(insight::reason_class("not-analyzed"), "unanalyzed");
}

// A code outside the closed set maps to its own "unknown:<code>" class,
// so an emitter growing a new code can never silently pass the diff.
TEST(ReasonClass, UnknownCodesGetDistinctClass) {
  EXPECT_EQ(insight::reason_class("brand-new-code"), "unknown:brand-new-code");
  EXPECT_NE(insight::reason_class("brand-new-code"),
            insight::reason_class("other-new-code"));
}

// --- aggregation -----------------------------------------------------------

TEST(ProfileBuilder, EmptyBuilderThrows) {
  insight::ProfileBuilder builder;
  EXPECT_THROW(builder.profile(), UserError);
}

TEST(ProfileBuilder, RemarksWithoutReportThrow) {
  insight::ProfileBuilder builder;
  builder.add_remarks("orphan", {});
  EXPECT_THROW(builder.profile(), UserError);
}

TEST(ProfileBuilder, RejectsForeignDocuments) {
  insight::ProfileBuilder builder;
  EXPECT_THROW(builder.add_report("x", parse_json("{\"schema\":\"other\"}")),
               UserError);
}

TEST(AggregateDirectory, EmptyDirectoryThrows) {
  const std::string dir = ::testing::TempDir() + "insight_empty_dir";
  std::filesystem::create_directories(dir);
  EXPECT_THROW(insight::aggregate_directory(dir), UserError);
  EXPECT_THROW(insight::aggregate_directory(dir + "/nonexistent"), UserError);
}

// The suite profile holds the invariants every downstream consumer
// relies on: schema header, consistent summary counts, unique
// (code, unit, loop) keys using the `do[N]` ordinal scheme, a reason
// class on every serial loop, and span rollups from the traces.
TEST(SuiteProfile, AggregatesAllSixteenCodesConsistently) {
  const JsonValue profile = suite_profile(Options::polaris());

  EXPECT_EQ(profile.find("schema")->string_value, "polaris-suite-profile");
  EXPECT_EQ(static_cast<int>(profile.find("version")->number),
            insight::kSuiteProfileSchemaVersion);
  ASSERT_EQ(profile.find("codes")->items.size(), benchmark_suite().size());

  const JsonValue* summary = profile.find("summary");
  const JsonValue* loops = profile.find("loops");
  ASSERT_NE(summary, nullptr);
  ASSERT_NE(loops, nullptr);
  EXPECT_EQ(static_cast<std::size_t>(summary->find("codes")->number),
            benchmark_suite().size());
  EXPECT_EQ(static_cast<std::size_t>(summary->find("loops")->number),
            loops->items.size());

  std::size_t parallel = 0, speculative = 0, serial = 0;
  std::set<std::string> keys;
  for (const JsonValue& l : loops->items) {
    const std::string loop_name = l.find("loop")->string_value;
    EXPECT_EQ(loop_name.compare(0, 3, "do["), 0) << loop_name;
    EXPECT_TRUE(keys
                    .insert(l.find("code")->string_value + "/" +
                            l.find("unit")->string_value + "/" + loop_name)
                    .second)
        << "duplicate loop key";
    if (l.find("parallel")->bool_value) {
      ++parallel;
      EXPECT_TRUE(l.find("reason_code")->string_value.empty());
    } else if (l.find("speculative")->bool_value) {
      ++speculative;
    } else {
      ++serial;
      const std::string code = l.find("reason_code")->string_value;
      EXPECT_FALSE(code.empty());
      EXPECT_EQ(l.find("reason_class")->string_value,
                insight::reason_class(code));
      EXPECT_NE(l.find("reason_class")->string_value.compare(0, 8,
                                                             "unknown:"),
                0)
          << "reason code '" << code << "' outside the closed set";
    }
  }
  EXPECT_EQ(static_cast<std::size_t>(summary->find("parallel")->number),
            parallel);
  EXPECT_EQ(static_cast<std::size_t>(summary->find("speculative")->number),
            speculative);
  EXPECT_EQ(static_cast<std::size_t>(summary->find("serial")->number), serial);
  EXPECT_GT(parallel, 0u);
  EXPECT_GT(serial, 0u);

  // The reason histogram covers exactly the serial loops.
  std::uint64_t histogram_total = 0;
  for (const JsonValue& e : profile.find("reason_histogram")->items) {
    histogram_total += static_cast<std::uint64_t>(e.find("count")->number);
    EXPECT_EQ(e.find("class")->string_value,
              insight::reason_class(e.find("reason_code")->string_value));
  }
  EXPECT_EQ(histogram_total, serial + speculative);

  // Traces contributed pass spans and remarks were folded in.
  EXPECT_FALSE(profile.find("pass_spans")->items.empty());
  EXPECT_GT(profile.find("remarks")->find("total")->number, 0.0);
  EXPECT_FALSE(profile.find("stats")->items.empty());
  EXPECT_FALSE(profile.find("pass_timings")->items.empty());
}

// --- the acceptance gate: dropping doall flags every flip -------------------

// Recompile the suite without the doall pass (`-passes=` spec) and diff
// against the full-pipeline profile: every loop that was parallel and is
// now serial must surface as a named parallel-flip regression, and the
// diff must report failure.
TEST(Diff, DroppingDoallFlagsEveryParallelFlip) {
  const JsonValue base = suite_profile(Options::polaris());
  Options degraded = Options::polaris();
  degraded.pipeline_spec = "inline,constprop,normalize,induction,forwardsub";
  const JsonValue cur = suite_profile(degraded);

  const insight::DiffResult result = insight::diff_profiles(base, cur);
  ASSERT_TRUE(result.regressed());
  EXPECT_FALSE(result.zero_delta);

  // Collect the expected flip set straight from the two profiles.
  const auto base_loops = loop_index(base);
  const auto cur_loops = loop_index(cur);
  std::set<std::string> expected_flips;
  for (const auto& [key, bl] : base_loops) {
    auto it = cur_loops.find(key);
    if (it != cur_loops.end() && loop_parallel(*bl) &&
        !loop_parallel(*it->second))
      expected_flips.insert(key);
  }
  ASSERT_FALSE(expected_flips.empty());

  std::set<std::string> flagged;
  for (const insight::DiffFinding& f : result.regressions) {
    if (f.kind != "parallel-flip") continue;
    flagged.insert(f.code + "/" + f.unit + "/" + f.loop);
    // Each finding names the new reason code.
    EXPECT_NE(f.detail.find("reason-code"), std::string::npos) << f.detail;
    EXPECT_NE(f.detail.find("not-analyzed"), std::string::npos) << f.detail;
  }
  EXPECT_EQ(flagged, expected_flips);

  // The machine-readable verdict matches.
  const JsonValue verdict = result.to_json();
  EXPECT_EQ(verdict.find("schema")->string_value,
            "polaris-suite-profile-diff");
  EXPECT_EQ(verdict.find("verdict")->string_value, "regression");
  EXPECT_EQ(verdict.find("regressions")->items.size(),
            result.regressions.size());
  EXPECT_NE(result.table().find("verdict: REGRESSION"), std::string::npos);
}

// --- jobs determinism ------------------------------------------------------

// The same suite compiled at -jobs=1 and -jobs=8 yields profiles whose
// diff is clean and zero-delta after duration scrubbing: the aggregation
// pipeline preserves the compiler's jobs-invariance guarantee
// (determinism_test) end to end.
TEST(Diff, JobsOneVersusEightIsZeroDelta) {
  Options serial = Options::polaris();
  serial.jobs = 1;
  Options threaded = Options::polaris();
  threaded.jobs = 8;

  const insight::DiffResult result =
      insight::diff_profiles(suite_profile(serial), suite_profile(threaded));
  EXPECT_TRUE(result.regressions.empty());
  EXPECT_TRUE(result.zero_delta);
  EXPECT_NE(result.table().find("(zero-delta)"), std::string::npos);
}

// --- synthetic classification cases ----------------------------------------

/// A minimal single-loop profile for targeted diff cases.
JsonValue mini_profile(const std::string& state,
                       const std::string& reason_code) {
  std::string loop =
      "{\"code\":\"demo\",\"unit\":\"main\",\"loop\":\"do[0]\",\"depth\":1,";
  loop += "\"parallel\":" + std::string(state == "parallel" ? "true" : "false");
  loop += ",\"speculative\":" +
          std::string(state == "speculative" ? "true" : "false");
  loop += ",\"reason_code\":\"" + reason_code + "\",\"reason_class\":\"" +
          (reason_code.empty() ? "" : insight::reason_class(reason_code)) +
          "\"}";
  return parse_json(
      "{\"schema\":\"polaris-suite-profile\",\"version\":1,"
      "\"codes\":[\"demo\"],\"loops\":[" +
      loop + "]}");
}

TEST(Diff, ReasonClassChangeIsRegression) {
  const insight::DiffResult result =
      insight::diff_profiles(mini_profile("serial", "carried-dependence"),
                             mini_profile("serial", "unresolved-call"));
  ASSERT_EQ(result.regressions.size(), 1u);
  EXPECT_EQ(result.regressions[0].kind, "reason-class-change");
  EXPECT_EQ(result.regressions[0].code, "demo");
  EXPECT_EQ(result.regressions[0].unit, "main");
  EXPECT_EQ(result.regressions[0].loop, "do[0]");
  EXPECT_NE(result.regressions[0].detail.find("dependence"),
            std::string::npos);
  EXPECT_NE(result.regressions[0].detail.find("interprocedural"),
            std::string::npos);
}

TEST(Diff, SameClassReasonChangeOnlyWarns) {
  const insight::DiffResult result =
      insight::diff_profiles(mini_profile("serial", "carried-dependence"),
                             mini_profile("serial", "scalar-recurrence"));
  EXPECT_TRUE(result.regressions.empty());
  ASSERT_EQ(result.warnings.size(), 1u);
  EXPECT_EQ(result.warnings[0].kind, "reason-code-change");
}

TEST(Diff, SpeculativeToSerialIsRegression) {
  const insight::DiffResult result = insight::diff_profiles(
      mini_profile("speculative", ""), mini_profile("serial", "loop-io"));
  ASSERT_EQ(result.regressions.size(), 1u);
  EXPECT_EQ(result.regressions[0].kind, "parallel-flip");
}

TEST(Diff, SerialToParallelIsImprovement) {
  const insight::DiffResult result = insight::diff_profiles(
      mini_profile("serial", "not-analyzed"), mini_profile("parallel", ""));
  EXPECT_TRUE(result.regressions.empty());
  ASSERT_EQ(result.improvements.size(), 1u);
  EXPECT_EQ(result.improvements[0].kind, "parallelized");
  EXPECT_EQ(result.to_json().find("verdict")->string_value, "clean");
}

/// A profile holding one statistic counter.
JsonValue stat_profile(double value) {
  std::ostringstream os;
  os << "{\"schema\":\"polaris-suite-profile\",\"version\":1,"
     << "\"codes\":[\"demo\"],\"loops\":[],\"stats\":[{\"component\":"
     << "\"simplify\",\"name\":\"rewrites\",\"value\":" << value << "}]}";
  return parse_json(os.str());
}

TEST(Diff, StatDriftGatedByThreshold) {
  // 4% drift: below the 5% default, silent.
  EXPECT_TRUE(
      insight::diff_profiles(stat_profile(100), stat_profile(104)).warnings
          .empty());
  // 20% drift: warns, but never regresses.
  const insight::DiffResult drift =
      insight::diff_profiles(stat_profile(100), stat_profile(120));
  EXPECT_TRUE(drift.regressions.empty());
  ASSERT_EQ(drift.warnings.size(), 1u);
  EXPECT_EQ(drift.warnings[0].kind, "stat-drift");
  EXPECT_NE(drift.warnings[0].detail.find("simplify.rewrites"),
            std::string::npos);
  // A tightened threshold catches the small drift too.
  insight::DiffThresholds tight;
  tight.stat_warn_pct = 1.0;
  EXPECT_EQ(insight::diff_profiles(stat_profile(100), stat_profile(104), tight)
                .warnings.size(),
            1u);
}

TEST(Diff, SchemaMismatchThrows) {
  EXPECT_THROW(
      insight::diff_profiles(parse_json("{\"schema\":\"other\"}"),
                             mini_profile("serial", "loop-io")),
      UserError);
  EXPECT_THROW(
      insight::diff_profiles(
          mini_profile("serial", "loop-io"),
          parse_json("{\"schema\":\"polaris-suite-profile\",\"version\":99}")),
      UserError);
}

// --- the committed baseline ------------------------------------------------

// The regression sentinel itself: a freshly built profile diffed against
// tests/data/suite_profile_baseline.json must show no regressions.  An
// intentional parallelization change refreshes the baseline via
// tools/update_suite_baseline.sh.
TEST(Baseline, FreshProfileMatchesCommittedBaseline) {
  const JsonValue baseline = parse_json_file(POLARIS_SUITE_BASELINE);
  const JsonValue current = suite_profile(Options::polaris());
  const insight::DiffResult result =
      insight::diff_profiles(baseline, current);
  EXPECT_TRUE(result.regressions.empty())
      << result.table()
      << "\nif this parallelization change is intentional, refresh with "
         "tools/update_suite_baseline.sh";
  EXPECT_TRUE(result.zero_delta) << result.table();
}

}  // namespace
}  // namespace polaris
