// Suite validation: every mini program parses, compiles under both
// compiler modes, runs to completion, and produces byte-identical output
// under transformation — the semantic-equivalence property over the whole
// evaluation suite.  Qualitative expectations (who parallelizes what)
// are asserted per program.
#include "suite/suite.h"

#include <gtest/gtest.h>

#include "driver/compiler.h"
#include "interp/interp.h"
#include "parser/parser.h"
#include "parser/printer.h"

namespace polaris {
namespace {

class SuiteTest : public ::testing::TestWithParam<std::string> {
 protected:
  const BenchProgram& program() { return suite_program(GetParam()); }
};

TEST_P(SuiteTest, ParsesAndRunsSequentially) {
  auto prog = parse_program(program().source);
  auto r = run_program(*prog, MachineConfig{});
  ASSERT_FALSE(r.output.empty());
  EXPECT_NE(r.output.back().find(program().name), std::string::npos);
  EXPECT_GT(r.clock.serial, 1000u);
}

TEST_P(SuiteTest, PolarisTransformationPreservesOutput) {
  auto ref = parse_program(program().source);
  auto ref_run = run_program(*ref, MachineConfig{});

  Compiler compiler(CompilerMode::Polaris);
  CompileReport report;
  auto prog = compiler.compile(program().source, &report);
  MachineConfig cfg;
  cfg.processors = 8;
  auto run = run_program(*prog, cfg);
  EXPECT_EQ(ref_run.output, run.output);
}

TEST_P(SuiteTest, BaselineTransformationPreservesOutput) {
  auto ref = parse_program(program().source);
  auto ref_run = run_program(*ref, MachineConfig{});

  Compiler compiler(CompilerMode::Baseline);
  auto prog = compiler.compile(program().source);
  MachineConfig cfg;
  cfg.processors = 8;
  auto run = run_program(*prog, cfg);
  EXPECT_EQ(ref_run.output, run.output);
}

TEST_P(SuiteTest, PrinterRoundTripPreservesBehaviour) {
  // parse -> print -> parse must yield a program with identical output.
  auto p1 = parse_program(program().source);
  auto r1 = run_program(*p1, MachineConfig{});
  std::string printed = to_source(*p1);
  auto p2 = parse_program(printed);
  auto r2 = run_program(*p2, MachineConfig{});
  EXPECT_EQ(r1.output, r2.output);
}

std::vector<std::string> suite_names() {
  std::vector<std::string> names;
  for (const BenchProgram& p : benchmark_suite()) names.push_back(p.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, SuiteTest,
                         ::testing::ValuesIn(suite_names()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

// --- qualitative expectations (the Figure 7 mechanism) -----------------------

double speedup_under(const std::string& name, CompilerMode mode,
                     int processors = 8) {
  const BenchProgram& bp = suite_program(name);
  auto ref = parse_program(bp.source);
  auto ref_run = run_program(*ref, MachineConfig{});

  Compiler compiler(mode);
  auto prog = compiler.compile(bp.source);
  ExecutionConfig cfg = backend_config(mode, *prog, processors);
  auto run = run_program(*prog, cfg.machine);
  double par = static_cast<double>(run.clock.parallel) * cfg.codegen_factor;
  return static_cast<double>(ref_run.clock.serial) / par;
}

TEST(SuiteShapeTest, TrfdNeedsPolarisTechniques) {
  EXPECT_GT(speedup_under("trfd", CompilerMode::Polaris), 3.0);
  EXPECT_LT(speedup_under("trfd", CompilerMode::Baseline), 2.0);
  EXPECT_GT(speedup_under("trfd", CompilerMode::Polaris),
            2.2*speedup_under("trfd", CompilerMode::Baseline));
}

TEST(SuiteShapeTest, OceanRangeTestWins) {
  EXPECT_GT(speedup_under("ocean", CompilerMode::Polaris), 2.5);
  EXPECT_LT(speedup_under("ocean", CompilerMode::Baseline), 2.0);
  EXPECT_GT(speedup_under("ocean", CompilerMode::Polaris),
            2.2*speedup_under("ocean", CompilerMode::Baseline));
}

TEST(SuiteShapeTest, BdnaPrivatizationWins) {
  EXPECT_GT(speedup_under("bdna", CompilerMode::Polaris), 2.0);
  EXPECT_LT(speedup_under("bdna", CompilerMode::Baseline), 2.2);
  EXPECT_GT(speedup_under("bdna", CompilerMode::Polaris),
            2.2*speedup_under("bdna", CompilerMode::Baseline));
}

TEST(SuiteShapeTest, MdgHistogramReductionWins) {
  EXPECT_GT(speedup_under("mdg", CompilerMode::Polaris), 2.5);
  EXPECT_LT(speedup_under("mdg", CompilerMode::Baseline), 1.5);
}

TEST(SuiteShapeTest, Arc2dArrayPrivatizationWins) {
  EXPECT_GT(speedup_under("arc2d", CompilerMode::Polaris), 3.0);
  EXPECT_LT(speedup_under("arc2d", CompilerMode::Baseline),
            speedup_under("arc2d", CompilerMode::Polaris) / 2.0);
}

TEST(SuiteShapeTest, Tfft2SymbolicStrides) {
  EXPECT_GT(speedup_under("tfft2", CompilerMode::Polaris), 2.0);
  EXPECT_LT(speedup_under("tfft2", CompilerMode::Baseline), 1.5);
}

TEST(SuiteShapeTest, SwimBothSucceed) {
  double pol = speedup_under("swim", CompilerMode::Polaris);
  double base = speedup_under("swim", CompilerMode::Baseline);
  EXPECT_GT(pol, 3.5);
  EXPECT_GT(base, 3.5);
}

TEST(SuiteShapeTest, ApfluAndSu2corFavorPfaBackend) {
  // Neither compiler parallelizes the dominant recurrences; PFA's code
  // generation gives it the edge (the paper's "PFA better on 2 codes").
  for (const char* name : {"applu", "su2cor"}) {
    double pol = speedup_under(name, CompilerMode::Polaris);
    double base = speedup_under(name, CompilerMode::Baseline);
    EXPECT_LT(pol, 2.0) << name;
    EXPECT_GT(base, pol) << name;
  }
}

TEST(SuiteShapeTest, PfaBackfiresOnTomcatvAndAppsp) {
  // Both compilers detect the parallelism; PFA's restructuring of the
  // short-trip inner loops wastes it (paper Section 4.2).
  for (const char* name : {"tomcatv", "appsp"}) {
    double pol = speedup_under(name, CompilerMode::Polaris);
    double base = speedup_under(name, CompilerMode::Baseline);
    EXPECT_GT(pol, 2.0) << name;
    EXPECT_LT(base, pol * 0.75) << name;
  }
}

TEST(SuiteShapeTest, OverallWinLossShape) {
  // Figure 7's aggregate shape: Polaris >= baseline on 14 of 16 codes,
  // strictly better on at least 9, and the baseline wins on exactly the
  // two backend-bound codes.
  int polaris_strictly_better = 0;
  int baseline_wins = 0;
  for (const BenchProgram& p : benchmark_suite()) {
    double pol = speedup_under(p.name, CompilerMode::Polaris);
    double base = speedup_under(p.name, CompilerMode::Baseline);
    if (pol > base * 1.10) ++polaris_strictly_better;
    if (base > pol * 1.02) ++baseline_wins;
  }
  EXPECT_GE(polaris_strictly_better, 9);
  EXPECT_LE(baseline_wins, 2);
}

}  // namespace
}  // namespace polaris

namespace polaris {
namespace {

TEST(SuiteShapeTest, StrengthReductionKeepsSerialCostFlat) {
  // The paper's code-expansion concern: the transformed TRFD must not be
  // meaningfully slower than the original when run on one processor.
  const BenchProgram& bp = suite_program("trfd");
  auto ref = parse_program(bp.source);
  auto ref_run = run_program(*ref, MachineConfig{});
  Compiler compiler(CompilerMode::Polaris);
  auto prog = compiler.compile(bp.source);
  auto run = run_program(*prog, MachineConfig{});  // 1 processor
  double ratio = static_cast<double>(run.clock.parallel) /
                 static_cast<double>(ref_run.clock.serial);
  EXPECT_LT(ratio, 1.10) << "transformed serial cost blew up";
}

}  // namespace
}  // namespace polaris
