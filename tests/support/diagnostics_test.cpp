#include "support/diagnostics.h"

#include <gtest/gtest.h>

#include <sstream>

namespace polaris {
namespace {

TEST(DiagnosticsTest, CountsBySeverity) {
  Diagnostics d;
  d.note("rangetest", "main/do_10", "loop proven parallel");
  d.warning("inline", "main", "recursion depth limit reached");
  d.error("parser", "sub1", "unsupported construct");
  EXPECT_EQ(d.count(DiagSeverity::Note), 1u);
  EXPECT_EQ(d.count(DiagSeverity::Warning), 1u);
  EXPECT_EQ(d.count(DiagSeverity::Error), 1u);
  EXPECT_TRUE(d.has_errors());
}

TEST(DiagnosticsTest, ContainsSearchesMessages) {
  Diagnostics d;
  d.note("priv", "main/do_20", "array a privatized");
  EXPECT_TRUE(d.contains("privatized"));
  EXPECT_FALSE(d.contains("reduction"));
}

TEST(DiagnosticsTest, PrintFormat) {
  Diagnostics d;
  d.note("doall", "main/do_10", "parallel");
  std::ostringstream os;
  d.print(os);
  EXPECT_EQ(os.str(), "note [doall] main/do_10: parallel\n");
}

TEST(DiagnosticsTest, ClearEmpties) {
  Diagnostics d;
  d.error("x", "y", "z");
  d.clear();
  EXPECT_FALSE(d.has_errors());
  EXPECT_TRUE(d.all().empty());
}

}  // namespace
}  // namespace polaris
