// ResourceGovernor unit tests: fuel accounting, symbolic ceilings, the
// degradation-event record (aggregation, mark/truncate rollback, shard
// absorption), shard fuel shares, and the degraded_options ladder rungs.
#include <gtest/gtest.h>

#include "support/context.h"
#include "support/governor.h"
#include "support/options.h"

namespace polaris {
namespace {

TEST(Governor, InactiveByDefaultAndNullWithoutContext) {
  ResourceGovernor g;
  EXPECT_FALSE(g.active());
  // No ceiling installed: check sites are free no-ops.
  g.charge(1000000);
  g.check_poly_terms(1u << 20);
  g.check_atoms(1u << 20);
  EXPECT_EQ(ResourceGovernor::current(), nullptr);
}

TEST(Governor, CurrentReturnsActiveBoundGovernor) {
  CompileContext cc;
  CompileContext::Scope scope(&cc);
  // Bound but inactive: current() still reports "ungoverned".
  EXPECT_EQ(ResourceGovernor::current(), nullptr);
  GovernorLimits limits;
  limits.max_poly_terms = 8;
  cc.governor().configure(limits);
  EXPECT_EQ(ResourceGovernor::current(), &cc.governor());
  cc.governor().configure(GovernorLimits{});
  EXPECT_EQ(ResourceGovernor::current(), nullptr);
}

TEST(Governor, FuelChargesUntilExhaustedThenEveryChargeThrows) {
  ResourceGovernor g;
  GovernorLimits limits;
  limits.fuel = 100;
  g.configure(limits);
  g.charge(50);
  EXPECT_EQ(g.fuel_spent(), 50u);
  EXPECT_EQ(g.fuel_remaining(), 50u);
  EXPECT_THROW(g.charge(50), ResourceBlowup);
  // An exhausted meter stays exhausted: later ladder attempts must trip
  // immediately so the degradation point is deterministic.
  EXPECT_THROW(g.charge(1), ResourceBlowup);
  EXPECT_EQ(g.fuel_remaining(), 0u);
  try {
    g.charge(1);
    FAIL() << "expected ResourceBlowup";
  } catch (const ResourceBlowup& b) {
    EXPECT_EQ(b.trigger(), GovernorTrigger::CompileFuel);
    EXPECT_NE(std::string(b.what()).find("compile-fuel"), std::string::npos);
  }
}

TEST(Governor, ReconfigureKeepsTheMeterRunning) {
  ResourceGovernor g;
  GovernorLimits limits;
  limits.fuel = 100;
  g.configure(limits);
  g.charge(60);
  // A ladder retry reconfigures mid-compile; spent fuel must survive.
  g.configure(limits);
  EXPECT_EQ(g.fuel_spent(), 60u);
  EXPECT_THROW(g.charge(40), ResourceBlowup);
}

TEST(Governor, PolyAndAtomCeilingsThrowWithTheirTriggers) {
  ResourceGovernor g;
  GovernorLimits limits;
  limits.max_poly_terms = 4;
  limits.max_atoms = 10;
  g.configure(limits);
  g.check_poly_terms(4);  // at the ceiling: fine
  g.check_atoms(10);
  try {
    g.check_poly_terms(5);
    FAIL() << "expected ResourceBlowup";
  } catch (const ResourceBlowup& b) {
    EXPECT_EQ(b.trigger(), GovernorTrigger::PolyTerms);
  }
  try {
    g.check_atoms(11);
    FAIL() << "expected ResourceBlowup";
  } catch (const ResourceBlowup& b) {
    EXPECT_EQ(b.trigger(), GovernorTrigger::AtomCeiling);
  }
}

TEST(Governor, ShardFuelShareSplitsRemainingAndFloorsAtOne) {
  ResourceGovernor g;
  EXPECT_EQ(g.shard_fuel_share(4), 0u);  // no limit: shards unlimited
  GovernorLimits limits;
  limits.fuel = 100;
  g.configure(limits);
  EXPECT_EQ(g.shard_fuel_share(4), 25u);
  g.charge(60);
  EXPECT_EQ(g.shard_fuel_share(4), 10u);
  // Exhausted parent: shards get 1 tick (exhausted), never unlimited.
  try {
    g.charge(100);
  } catch (const ResourceBlowup&) {
  }
  EXPECT_EQ(g.shard_fuel_share(4), 1u);
}

TEST(Governor, BailoutAggregatesPerScopeSiteAndTrigger) {
  ResourceGovernor g;
  g.set_scope("doall", "olda");
  EXPECT_TRUE(g.note_bailout("rangetest", GovernorTrigger::PolyTerms));
  EXPECT_FALSE(g.note_bailout("rangetest", GovernorTrigger::PolyTerms));
  EXPECT_FALSE(g.note_bailout("rangetest", GovernorTrigger::PolyTerms));
  ASSERT_EQ(g.events().size(), 1u);
  EXPECT_EQ(g.events()[0].count, 3u);
  EXPECT_EQ(g.events()[0].action, "conservative-bailout");
  EXPECT_EQ(g.events()[0].pass, "doall");
  EXPECT_EQ(g.events()[0].unit, "olda");
  // A different site, trigger, or scope starts a new event.
  EXPECT_TRUE(g.note_bailout("ddtest", GovernorTrigger::PolyTerms));
  EXPECT_TRUE(g.note_bailout("rangetest", GovernorTrigger::CompileFuel));
  g.set_scope("doall", "intgrl");
  EXPECT_TRUE(g.note_bailout("rangetest", GovernorTrigger::PolyTerms));
  EXPECT_EQ(g.events().size(), 4u);
}

TEST(Governor, MarkAndTruncateUnwindEvents) {
  ResourceGovernor g;
  g.set_scope("induction", "main");
  g.note_bailout("simplify", GovernorTrigger::PolyTerms);
  const std::size_t mark = g.event_mark();
  g.note_bailout("rangetest", GovernorTrigger::PolyTerms);
  g.note_bailout("ddtest", GovernorTrigger::PolyTerms);
  EXPECT_EQ(g.events().size(), 3u);
  g.truncate_events(mark);
  ASSERT_EQ(g.events().size(), 1u);
  EXPECT_EQ(g.events()[0].site, "simplify");
}

TEST(Governor, AbsorbAppendsShardEventsAndFoldsFuel) {
  ResourceGovernor parent;
  GovernorLimits limits;
  limits.fuel = 1000;
  parent.configure(limits);
  parent.charge(100);

  ResourceGovernor shard;
  GovernorLimits shard_limits;
  shard_limits.fuel = 500;
  shard.configure(shard_limits);
  shard.charge(40);
  shard.set_scope("doall", "unit2");
  shard.note_bailout("rangetest", GovernorTrigger::CompileFuel);

  parent.absorb(shard);
  EXPECT_EQ(parent.fuel_spent(), 140u);
  ASSERT_EQ(parent.events().size(), 1u);
  EXPECT_EQ(parent.events()[0].unit, "unit2");
  EXPECT_TRUE(shard.events().empty());
}

TEST(Governor, ConservativeBailoutEmitsOneRemarkPerRun) {
  CompileContext cc;
  CompileContext::Scope scope(&cc);
  cc.governor().set_scope("doall", "olda");
  const ResourceBlowup blow(GovernorTrigger::PolyTerms, "grew too big");
  note_conservative_bailout("rangetest", blow);
  note_conservative_bailout("rangetest", blow);
  ASSERT_EQ(cc.governor().events().size(), 1u);
  EXPECT_EQ(cc.governor().events()[0].count, 2u);
  int remarks = 0;
  for (const Diagnostic* d : cc.diags().remarks())
    if (d->reason == "resource-bailout") ++remarks;
  EXPECT_EQ(remarks, 1);
}

TEST(Governor, LimitsFromOptionsConvertsBudgetToFuel) {
  Options o;
  GovernorLimits off = limits_from_options(o);
  EXPECT_EQ(off.fuel, 0u);
  EXPECT_EQ(off.max_poly_terms, 0u);
  EXPECT_EQ(off.max_atoms, 0u);

  o.compile_budget_ms = 2.0;
  o.max_poly_terms = 32;
  o.max_atoms_per_unit = 64;
  GovernorLimits on = limits_from_options(o);
  EXPECT_EQ(on.fuel, 2 * kFuelTicksPerMs);
  EXPECT_EQ(on.max_poly_terms, 32u);
  EXPECT_EQ(on.max_atoms, 64u);

  // A positive budget below one tick still installs a (1-tick) limit.
  Options tiny;
  tiny.compile_budget_ms = 1e-9;
  EXPECT_GE(limits_from_options(tiny).fuel, 1u);
}

TEST(Governor, DegradedOptionsRungsOnlyEverGetCheaper) {
  const Options base = Options::polaris();
  const Options full = degraded_options(base, 0);
  const Options reduced = degraded_options(base, 1);
  const Options floor = degraded_options(base, 2);

  EXPECT_EQ(full.max_loop_permutations, base.max_loop_permutations);
  EXPECT_EQ(full.max_simplify_depth, base.max_simplify_depth);

  EXPECT_LT(reduced.max_loop_permutations, base.max_loop_permutations);
  EXPECT_GT(reduced.rangetest_max_permutations, 0);
  EXPECT_LT(reduced.max_gsa_subst_depth, base.max_gsa_subst_depth);
  EXPECT_GT(reduced.max_simplify_depth, 0);
  EXPECT_TRUE(reduced.range_test);

  EXPECT_FALSE(floor.range_test);
  EXPECT_LE(floor.max_loop_permutations, reduced.max_loop_permutations);
  EXPECT_LE(floor.rangetest_max_permutations,
            reduced.rangetest_max_permutations);
  EXPECT_LE(floor.max_gsa_subst_depth, reduced.max_gsa_subst_depth);
  EXPECT_LE(floor.max_simplify_depth, reduced.max_simplify_depth);

  // Correctness-relevant switches are never touched by any rung.
  for (int rung = 0; rung < kLadderRungs; ++rung) {
    const Options o = degraded_options(base, rung);
    EXPECT_EQ(o.reductions, base.reductions);
    EXPECT_EQ(o.scalar_privatization, base.scalar_privatization);
    EXPECT_EQ(o.fault_recovery, base.fault_recovery);
    EXPECT_EQ(o.jobs, base.jobs);
  }
}

TEST(Governor, LadderRungNamesAreClosed) {
  EXPECT_STREQ(ladder_rung_name(0), "full");
  EXPECT_STREQ(ladder_rung_name(1), "reduced");
  EXPECT_STREQ(ladder_rung_name(2), "floor");
}

}  // namespace
}  // namespace polaris
