// support/json: the minimal JSON document model the observability layer
// builds on (report-json serialization, trace output, remark streams) and
// the strict parser the schema-validation tests consume it back with.
#include "support/json.h"

#include <gtest/gtest.h>

#include "support/assert.h"

namespace polaris {
namespace {

TEST(Json, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(Json, SerializesScalarsAndContainers) {
  JsonValue doc = JsonValue::object();
  doc.set("b", JsonValue::boolean(true));
  doc.set("n", JsonValue::null());
  doc.set("i", JsonValue::num(std::int64_t{-42}));
  doc.set("d", JsonValue::num(1.5));
  doc.set("s", JsonValue::str("x\ny"));
  JsonValue arr = JsonValue::array();
  arr.add(JsonValue::num(1));
  arr.add(JsonValue::num(2));
  doc.set("a", std::move(arr));
  EXPECT_EQ(doc.serialize(),
            "{\"b\":true,\"n\":null,\"i\":-42,\"d\":1.5,\"s\":\"x\\ny\","
            "\"a\":[1,2]}");
}

TEST(Json, IntegersSerializeWithoutExponentOrFraction) {
  EXPECT_EQ(JsonValue::num(std::uint64_t{9000000000000000ULL}).serialize(),
            "9000000000000000");
  EXPECT_EQ(JsonValue::num(0).serialize(), "0");
  EXPECT_EQ(JsonValue::num(-7).serialize(), "-7");
}

TEST(Json, ParsesWhatItSerializes) {
  JsonValue doc = JsonValue::object();
  doc.set("name", JsonValue::str("polaris"));
  doc.set("count", JsonValue::num(3));
  JsonValue inner = JsonValue::object();
  inner.set("flag", JsonValue::boolean(false));
  doc.set("inner", std::move(inner));
  const std::string text = doc.serialize();

  JsonValue back = parse_json(text);
  ASSERT_EQ(back.kind, JsonValue::Kind::Object);
  const JsonValue* name = back.find("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->string_value, "polaris");
  const JsonValue* count = back.find("count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->number, 3.0);
  const JsonValue* flag = back.find("inner")->find("flag");
  ASSERT_NE(flag, nullptr);
  EXPECT_FALSE(flag->bool_value);
  // Member order is preserved, so the round trip is byte-stable.
  EXPECT_EQ(back.serialize(), text);
}

TEST(Json, ParsesEscapesAndUnicode) {
  JsonValue v = parse_json("\"a\\n\\t\\\"\\\\\\u0041\"");
  EXPECT_EQ(v.string_value, "a\n\t\"\\A");
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(parse_json(""), UserError);
  EXPECT_THROW(parse_json("{"), UserError);
  EXPECT_THROW(parse_json("[1,]"), UserError);
  EXPECT_THROW(parse_json("{\"a\":1,}"), UserError);
  EXPECT_THROW(parse_json("{\"a\" 1}"), UserError);
  EXPECT_THROW(parse_json("nul"), UserError);
  EXPECT_THROW(parse_json("1 2"), UserError);          // trailing garbage
  EXPECT_THROW(parse_json("\"\x01\""), UserError);     // raw control char
}

TEST(Json, RejectsPathologicalNesting) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_THROW(parse_json(deep), UserError);
}

}  // namespace
}  // namespace polaris
