#include "support/assert.h"

#include <gtest/gtest.h>

namespace polaris {
namespace {

TEST(AssertTest, PassingAssertionIsSilent) {
  EXPECT_NO_THROW(p_assert(1 + 1 == 2));
}

TEST(AssertTest, FailingAssertionThrowsInternalError) {
  try {
    p_assert(2 + 2 == 5);
    FAIL() << "p_assert did not throw";
  } catch (const InternalError& e) {
    EXPECT_EQ(e.condition(), "2 + 2 == 5");
    EXPECT_NE(std::string(e.what()).find("assertion"), std::string::npos);
    EXPECT_GT(e.line(), 0);
  }
}

TEST(AssertTest, MessageIsCarried) {
  try {
    p_assert_msg(false, "loop nest was malformed");
    FAIL() << "p_assert_msg did not throw";
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("loop nest was malformed"),
              std::string::npos);
  }
}

TEST(AssertTest, UnreachableThrows) {
  EXPECT_THROW(p_unreachable("should not get here"), InternalError);
}

TEST(AssertTest, UserErrorIsDistinctFromInternalError) {
  EXPECT_THROW(throw UserError("bad source"), std::runtime_error);
  // InternalError is a logic_error, not a runtime_error.
  bool caught_as_runtime = false;
  try {
    p_assert(false);
  } catch (const std::runtime_error&) {
    caught_as_runtime = true;
  } catch (const std::logic_error&) {
  }
  EXPECT_FALSE(caught_as_runtime);
}

/// Fixture binding a FaultInjector to the test's thread — the `fault::`
/// free functions and p_assert injection ticks are no-ops without one
/// (in production the CompileContext::Scope of the compile binds it) —
/// and guaranteeing injection state never leaks between tests.
class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest() : scope_(&injector_) {}
  void TearDown() override {
    fault::clear_scope();
    fault::disarm();
  }

  FaultInjector injector_;
  FaultInjector::Scope scope_;
};

TEST_F(FaultInjectionTest, ParseSpecDefaults) {
  fault::InjectionSpec s = fault::parse_spec("doall");
  EXPECT_EQ(s.pass, "doall");
  EXPECT_EQ(s.unit, "*");
  EXPECT_EQ(s.site, 1);
}

TEST_F(FaultInjectionTest, ParseSpecFull) {
  fault::InjectionSpec s = fault::parse_spec("induction:olda:17");
  EXPECT_EQ(s.pass, "induction");
  EXPECT_EQ(s.unit, "olda");
  EXPECT_EQ(s.site, 17);
}

TEST_F(FaultInjectionTest, ParseSpecRejectsMalformed) {
  EXPECT_THROW(fault::parse_spec(""), UserError);
  EXPECT_THROW(fault::parse_spec(":u"), UserError);
  EXPECT_THROW(fault::parse_spec("p:u:abc"), UserError);
  EXPECT_THROW(fault::parse_spec("p:u:0"), UserError);
  EXPECT_THROW(fault::parse_spec("p:u:-3"), UserError);
  EXPECT_THROW(fault::parse_spec("p:u:1:extra"), UserError);
}

TEST_F(FaultInjectionTest, FiresAtNthSiteInMatchingScope) {
  fault::arm(fault::parse_spec("mypass:*:3"));
  fault::set_scope("mypass", "someunit");
  int fired_at = 0;
  for (int i = 1; i <= 5 && fired_at == 0; ++i) {
    try {
      p_assert(1 + 1 == 2);  // condition holds; only injection can throw
    } catch (const InternalError& e) {
      EXPECT_TRUE(e.injected());
      fired_at = i;
    }
  }
  EXPECT_EQ(fired_at, 3);
  // Fires at most once per scope: further sites pass untouched, and the
  // site counter freezes at the firing site.
  EXPECT_NO_THROW(p_assert(true));
  EXPECT_EQ(fault::sites_in_scope(), 3);
}

TEST_F(FaultInjectionTest, NonMatchingScopeIsUntouched) {
  fault::arm(fault::parse_spec("mypass:theunit"));
  fault::set_scope("otherpass", "theunit");
  for (int i = 0; i < 4; ++i) EXPECT_NO_THROW(p_assert(true));
  fault::set_scope("mypass", "otherunit");
  for (int i = 0; i < 4; ++i) EXPECT_NO_THROW(p_assert(true));
  EXPECT_FALSE(fault::consume_boundary_fault());
}

TEST_F(FaultInjectionTest, ScopeCounterRestartsPerScope) {
  fault::arm(fault::parse_spec("p:*:2"));
  fault::set_scope("p", "u1");
  EXPECT_NO_THROW(p_assert(true));          // site 1
  EXPECT_THROW(p_assert(true), InternalError);  // site 2 fires
  fault::set_scope("p", "u2");              // fresh scope, fresh counter
  EXPECT_NO_THROW(p_assert(true));
  EXPECT_THROW(p_assert(true), InternalError);
}

TEST_F(FaultInjectionTest, BoundaryFaultCoversAssertFreeScopes) {
  // A matching pass with fewer than N assertion sites still faults: the
  // pass manager asks for the boundary fault at the end of the scope.
  fault::arm(fault::parse_spec("p:u:100"));
  fault::set_scope("p", "u");
  EXPECT_NO_THROW(p_assert(true));
  EXPECT_TRUE(fault::consume_boundary_fault());
  EXPECT_FALSE(fault::consume_boundary_fault());  // consumed: fires once
}

TEST_F(FaultInjectionTest, DisarmedTicksAreFree) {
  EXPECT_FALSE(fault::armed());
  fault::set_scope("p", "u");
  EXPECT_NO_THROW(p_assert(true));
  EXPECT_FALSE(fault::consume_boundary_fault());
}

TEST_F(FaultInjectionTest, InjectedFlagDistinguishesRealFailures) {
  try {
    p_assert(2 + 2 == 5);
  } catch (const InternalError& e) {
    EXPECT_FALSE(e.injected());
  }
  fault::arm(fault::parse_spec("*"));
  fault::set_scope("p", "u");
  try {
    p_assert(true);
  } catch (const InternalError& e) {
    EXPECT_TRUE(e.injected());
  }
}

}  // namespace
}  // namespace polaris
