#include "support/assert.h"

#include <gtest/gtest.h>

namespace polaris {
namespace {

TEST(AssertTest, PassingAssertionIsSilent) {
  EXPECT_NO_THROW(p_assert(1 + 1 == 2));
}

TEST(AssertTest, FailingAssertionThrowsInternalError) {
  try {
    p_assert(2 + 2 == 5);
    FAIL() << "p_assert did not throw";
  } catch (const InternalError& e) {
    EXPECT_EQ(e.condition(), "2 + 2 == 5");
    EXPECT_NE(std::string(e.what()).find("assertion"), std::string::npos);
    EXPECT_GT(e.line(), 0);
  }
}

TEST(AssertTest, MessageIsCarried) {
  try {
    p_assert_msg(false, "loop nest was malformed");
    FAIL() << "p_assert_msg did not throw";
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("loop nest was malformed"),
              std::string::npos);
  }
}

TEST(AssertTest, UnreachableThrows) {
  EXPECT_THROW(p_unreachable("should not get here"), InternalError);
}

TEST(AssertTest, UserErrorIsDistinctFromInternalError) {
  EXPECT_THROW(throw UserError("bad source"), std::runtime_error);
  // InternalError is a logic_error, not a runtime_error.
  bool caught_as_runtime = false;
  try {
    p_assert(false);
  } catch (const std::runtime_error&) {
    caught_as_runtime = true;
  } catch (const std::logic_error&) {
  }
  EXPECT_FALSE(caught_as_runtime);
}

}  // namespace
}  // namespace polaris
