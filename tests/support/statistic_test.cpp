// support/statistic: the POLARIS_STATISTIC counter registry behind
// `-stats`, CompileReport::stats, and the fault-isolation restore path.
#include "support/statistic.h"

#include <gtest/gtest.h>

namespace polaris {
namespace {

POLARIS_STATISTIC("test-stat", widgets_built, "widgets built by this test");
POLARIS_STATISTIC("test-stat", gizmos_seen, "gizmos seen by this test");

StatisticValue find_stat(const std::vector<StatisticValue>& values,
                         const std::string& name) {
  for (const StatisticValue& v : values)
    if (v.component == "test-stat" && v.name == name) return v;
  return {};
}

TEST(Statistic, RegistersAndCounts) {
  const std::uint64_t before = widgets_built.value();
  ++widgets_built;
  widgets_built += 3;
  EXPECT_EQ(widgets_built.value(), before + 4);

  StatisticValue v = find_stat(StatisticRegistry::instance().values(),
                               "widgets_built");
  EXPECT_EQ(v.component, "test-stat");
  EXPECT_EQ(v.desc, "widgets built by this test");
  EXPECT_EQ(v.value, widgets_built.value());
}

TEST(Statistic, DeltaSinceReportsOnlyMovedCounters) {
  StatisticRegistry& reg = StatisticRegistry::instance();
  StatisticSnapshot base = reg.snapshot();
  ++gizmos_seen;
  ++gizmos_seen;
  std::vector<StatisticValue> delta = reg.delta_since(base);
  StatisticValue moved = find_stat(delta, "gizmos_seen");
  EXPECT_EQ(moved.value, 2u);
  // widgets_built did not move between snapshot and delta: absent.
  EXPECT_TRUE(find_stat(delta, "widgets_built").name.empty());
}

TEST(Statistic, RestoreUnwindsIncrements) {
  StatisticRegistry& reg = StatisticRegistry::instance();
  const std::uint64_t before = widgets_built.value();
  StatisticSnapshot snap = reg.snapshot();
  widgets_built += 100;
  ++gizmos_seen;
  reg.restore(snap);
  EXPECT_EQ(widgets_built.value(), before);
  EXPECT_TRUE(reg.delta_since(snap).empty());
}

}  // namespace
}  // namespace polaris
