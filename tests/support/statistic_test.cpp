// support/statistic: the POLARIS_STATISTIC counter layer behind
// `-stats`, CompileReport::stats, and the fault-isolation restore path.
//
// Descriptors are process-wide (the immutable catalog); values live in
// the StatisticRegistry of the CompileContext bound to the current
// thread.  These tests exercise the bridge (`++counter` inside a
// CompileContext::Scope), per-context isolation, and the shard-merge
// path the parallel pass manager uses.
#include "support/statistic.h"

#include <gtest/gtest.h>

#include "support/context.h"

namespace polaris {
namespace {

POLARIS_STATISTIC("test-stat", widgets_built, "widgets built by this test");
POLARIS_STATISTIC("test-stat", gizmos_seen, "gizmos seen by this test");

StatisticValue find_stat(const std::vector<StatisticValue>& values,
                         const std::string& name) {
  for (const StatisticValue& v : values)
    if (v.component == "test-stat" && v.name == name) return v;
  return {};
}

TEST(Statistic, RegistersAndCounts) {
  CompileContext cc;
  CompileContext::Scope scope(&cc);
  ++widgets_built;
  widgets_built += 3;
  EXPECT_EQ(cc.stats().value(widgets_built), 4u);

  StatisticValue v = find_stat(cc.stats().values(), "widgets_built");
  EXPECT_EQ(v.component, "test-stat");
  EXPECT_EQ(v.desc, "widgets built by this test");
  EXPECT_EQ(v.value, 4u);
}

TEST(Statistic, BumpOutsideAnyContextIsANoOp) {
  ASSERT_EQ(CompileContext::current(), nullptr);
  ++widgets_built;  // must not crash, must not count anywhere
  CompileContext cc;
  EXPECT_EQ(cc.stats().value(widgets_built), 0u);
}

TEST(Statistic, ContextsCountIndependently) {
  CompileContext a, b;
  {
    CompileContext::Scope scope(&a);
    widgets_built += 2;
    {
      // Scopes nest; the inner binding wins while alive.
      CompileContext::Scope inner(&b);
      ++widgets_built;
    }
    ++widgets_built;
  }
  EXPECT_EQ(a.stats().value(widgets_built), 3u);
  EXPECT_EQ(b.stats().value(widgets_built), 1u);
}

TEST(Statistic, DeltaSinceReportsOnlyMovedCounters) {
  CompileContext cc;
  CompileContext::Scope scope(&cc);
  StatisticSnapshot base = cc.stats().snapshot();
  ++gizmos_seen;
  ++gizmos_seen;
  std::vector<StatisticValue> delta = cc.stats().delta_since(base);
  StatisticValue moved = find_stat(delta, "gizmos_seen");
  EXPECT_EQ(moved.value, 2u);
  // widgets_built did not move between snapshot and delta: absent.
  EXPECT_TRUE(find_stat(delta, "widgets_built").name.empty());
}

TEST(Statistic, RestoreUnwindsIncrements) {
  CompileContext cc;
  CompileContext::Scope scope(&cc);
  StatisticSnapshot snap = cc.stats().snapshot();
  widgets_built += 100;
  ++gizmos_seen;
  cc.stats().restore(snap);
  EXPECT_EQ(cc.stats().value(widgets_built), 0u);
  EXPECT_TRUE(cc.stats().delta_since(snap).empty());
}

TEST(Statistic, MergeSumsShardCounters) {
  CompileContext parent, shard;
  {
    CompileContext::Scope scope(&parent);
    ++widgets_built;
  }
  {
    CompileContext::Scope scope(&shard);
    widgets_built += 4;
    ++gizmos_seen;
  }
  parent.merge_shard(shard);
  EXPECT_EQ(parent.stats().value(widgets_built), 5u);
  EXPECT_EQ(parent.stats().value(gizmos_seen), 1u);
}

}  // namespace
}  // namespace polaris
