#include "support/string_util.h"

#include <gtest/gtest.h>

namespace polaris {
namespace {

TEST(StringUtilTest, ToLowerUpper) {
  EXPECT_EQ(to_lower("DO 100 I = 1, N"), "do 100 i = 1, n");
  EXPECT_EQ(to_upper("enddo"), "ENDDO");
  EXPECT_EQ(to_lower(""), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t a b \r\n"), "a b");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtilTest, SplitSingle) {
  auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(starts_with("csrd$ doall", "csrd$"));
  EXPECT_FALSE(starts_with("x", "xy"));
  EXPECT_TRUE(ends_with("file.f", ".f"));
  EXPECT_FALSE(ends_with("f", ".f"));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

}  // namespace
}  // namespace polaris
