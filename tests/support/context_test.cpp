// support/context: the per-compilation CompileContext and its thread
// binding — the home of everything that used to be process-global state.
//
// Covers the Scope bridge (CompileContext::current + the nested
// FaultInjector binding p_assert injection reaches through), diagnostics
// rebinding, and the shard-merge protocol the parallel pass manager runs:
// statistics summed, trace events appended on one timeline with dangling
// shard spans closed.
#include "support/context.h"

#include <gtest/gtest.h>

namespace polaris {
namespace {

POLARIS_STATISTIC("test-context", context_ticks, "ticks counted by the test");

TEST(CompileContext, ScopeBindsAndNestsAndRestores) {
  EXPECT_EQ(CompileContext::current(), nullptr);
  CompileContext outer_cc, inner_cc;
  {
    CompileContext::Scope outer(&outer_cc);
    EXPECT_EQ(CompileContext::current(), &outer_cc);
    {
      CompileContext::Scope inner(&inner_cc);
      EXPECT_EQ(CompileContext::current(), &inner_cc);
    }
    EXPECT_EQ(CompileContext::current(), &outer_cc);
  }
  EXPECT_EQ(CompileContext::current(), nullptr);
}

TEST(CompileContext, ScopeBindsTheFaultInjectorToo) {
  CompileContext cc;
  cc.fault().arm(fault::parse_spec("p:*:1"));
  {
    CompileContext::Scope scope(&cc);
    EXPECT_EQ(FaultInjector::current(), &cc.fault());
    fault::set_scope("p", "u");
    // The context's injector is armed for site 1: the next tick fires.
    EXPECT_THROW(p_assert(true), InternalError);
    fault::clear_scope();
  }
  EXPECT_EQ(FaultInjector::current(), nullptr);
  // Outside any scope, injection ticks are inert even while armed.
  EXPECT_NO_THROW(p_assert(true));
}

TEST(CompileContext, DiagnosticsBindToTheReportSink) {
  CompileContext cc;
  cc.diags().note("test", "ctx", "to the owned sink");
  EXPECT_EQ(cc.diags().all().size(), 1u);

  Diagnostics report_sink;
  cc.bind_diagnostics(report_sink);
  cc.diags().note("test", "ctx", "to the report");
  EXPECT_EQ(report_sink.all().size(), 1u);
  EXPECT_TRUE(report_sink.contains("to the report"));
}

TEST(CompileContext, MergeShardSumsStatsAndAppendsTrace) {
  CompileContext parent;
  parent.trace().start("");
  {
    CompileContext::Scope scope(&parent);
    ++context_ticks;
  }
  parent.trace().instant("parent-event", "test");

  CompileContext shard;
  shard.trace().start_shard_of(parent.trace());
  {
    CompileContext::Scope scope(&shard);
    context_ticks += 2;
  }
  shard.trace().instant("shard-event", "test");
  {
    // A span still open when the shard merges — the faulted-worker case —
    // is closed by the merge, tagged dangling, not lost.
    trace::TraceSpan open(&shard.trace(), "shard-open", "test");
    parent.merge_shard(shard);
  }

  EXPECT_EQ(parent.stats().value(context_ticks), 3u);
  ASSERT_EQ(parent.trace().event_count(), 3u);
  EXPECT_EQ(parent.trace().events()[0].name, "parent-event");
  EXPECT_EQ(parent.trace().events()[1].name, "shard-event");
  EXPECT_EQ(parent.trace().events()[2].name, "shard-open");
  ASSERT_EQ(parent.trace().events()[2].args.size(), 1u);
  EXPECT_EQ(parent.trace().events()[2].args[0].first, "dangling");
}

}  // namespace
}  // namespace polaris
