#include "support/rational.h"

#include <gtest/gtest.h>

#include <sstream>

namespace polaris {
namespace {

TEST(RationalTest, DefaultIsZero) {
  Rational r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(RationalTest, NormalizesSignAndGcd) {
  Rational r(4, -6);
  EXPECT_EQ(r.num(), -2);
  EXPECT_EQ(r.den(), 3);
}

TEST(RationalTest, ArithmeticExact) {
  Rational half(1, 2), third(1, 3);
  EXPECT_EQ(half + third, Rational(5, 6));
  EXPECT_EQ(half - third, Rational(1, 6));
  EXPECT_EQ(half * third, Rational(1, 6));
  EXPECT_EQ(half / third, Rational(3, 2));
}

TEST(RationalTest, TrfdStyleDivisionByTwo) {
  // (j^2 - j)/2 increments: for j -> j+1 the difference is j, exactly.
  auto f = [](std::int64_t j) {
    return Rational(j * j - j) * Rational(1, 2);
  };
  for (std::int64_t j = 0; j < 20; ++j)
    EXPECT_EQ(f(j + 1) - f(j), Rational(j));
}

TEST(RationalTest, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GE(Rational(7), Rational(13, 2));
}

TEST(RationalTest, SignAndPredicates) {
  EXPECT_EQ(Rational(-3, 7).sign(), -1);
  EXPECT_EQ(Rational(0).sign(), 0);
  EXPECT_EQ(Rational(5, 5).sign(), 1);
  EXPECT_TRUE(Rational(5, 5).is_one());
  EXPECT_TRUE(Rational(6, 3).is_integer());
  EXPECT_EQ(Rational(6, 3).as_integer(), 2);
  EXPECT_FALSE(Rational(7, 3).is_integer());
}

TEST(RationalTest, IntegerAccessorAssertsOnFraction) {
  EXPECT_THROW(Rational(1, 2).as_integer(), InternalError);
}

TEST(RationalTest, DivisionByZeroAsserts) {
  EXPECT_THROW(Rational(1, 0), InternalError);
  EXPECT_THROW(Rational(1) / Rational(0), InternalError);
}

TEST(RationalTest, Printing) {
  std::ostringstream os;
  os << Rational(3, 4) << " " << Rational(5) << " " << Rational(-1, 2);
  EXPECT_EQ(os.str(), "3/4 5 -1/2");
}

TEST(RationalTest, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 4).to_double(), 0.25);
}

}  // namespace
}  // namespace polaris
