#include "support/options.h"

#include <gtest/gtest.h>

namespace polaris {
namespace {

TEST(OptionsTest, PolarisDefaultsEnableAdvancedAnalyses) {
  Options o = Options::polaris();
  EXPECT_TRUE(o.inline_expansion);
  EXPECT_TRUE(o.range_test);
  EXPECT_TRUE(o.array_privatization);
  EXPECT_TRUE(o.cascaded_induction);
  EXPECT_TRUE(o.histogram_reductions);
  EXPECT_TRUE(o.gsa_queries);
}

TEST(OptionsTest, BaselineModelsA1996Compiler) {
  // The baseline ("PFA-like") configuration keeps only the capabilities the
  // paper attributes to then-current commercial compilers.
  Options o = Options::baseline();
  EXPECT_FALSE(o.inline_expansion);
  EXPECT_FALSE(o.range_test);
  EXPECT_FALSE(o.array_privatization);
  EXPECT_FALSE(o.cascaded_induction);
  EXPECT_FALSE(o.histogram_reductions);
  EXPECT_FALSE(o.gsa_queries);
  // ...but the linear machinery stays on.
  EXPECT_TRUE(o.gcd_test);
  EXPECT_TRUE(o.banerjee_test);
  EXPECT_TRUE(o.induction_subst);
  EXPECT_TRUE(o.scalar_privatization);
  EXPECT_TRUE(o.reductions);
}

TEST(OptionsTest, SetByName) {
  Options o;
  o.set("range_test", false);
  EXPECT_FALSE(o.range_test);
  o.set("range_test", true);
  EXPECT_TRUE(o.range_test);
}

TEST(OptionsTest, SetUnknownNameAsserts) {
  Options o;
  EXPECT_THROW(o.set("no_such_option", true), InternalError);
}

}  // namespace
}  // namespace polaris
