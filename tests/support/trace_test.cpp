// support/trace: the per-context scoped-span tracer behind `-trace=FILE`.
//
// Covers the collection lifecycle (start/stop, off-by-default, null
// collector no-ops), span nesting via ts/dur containment, instant and
// counter events, the mark/truncate unwinding hook the fault-isolation
// layer uses, in-flight spans at stop() (closed and tagged dangling, not
// dropped), the shard append path the parallel pass manager merges
// through, and that the emitted document is valid Chrome trace JSON
// (validated with the in-tree parser).
#include "support/trace.h"

#include <gtest/gtest.h>

#include "support/json.h"

namespace polaris {
namespace {

using trace::TraceCollector;
using trace::TraceSpan;

TEST(Trace, OffByDefaultAndSpansAreNoOps) {
  TraceCollector c;
  ASSERT_FALSE(c.collecting());
  {
    TraceSpan span(&c, "ghost", "test");
    span.arg("k", "v");
  }
  c.instant("ghost", "test");
  c.counter("ghost", {{"x", 1}});
  EXPECT_EQ(c.event_count(), 0u);
  EXPECT_EQ(c.mark(), 0u);
}

TEST(Trace, NullCollectorSpansAreNoOps) {
  TraceSpan span(nullptr, "ghost", "test");
  span.arg("k", "v");  // must not touch anything
}

TEST(Trace, CollectsSpansInstantsAndCounters) {
  TraceCollector c;
  c.start("");
  {
    TraceSpan outer(&c, "outer", "test");
    {
      TraceSpan inner(&c, "inner", "test");
      inner.arg("key", "value");
      inner.arg("n", std::uint64_t{7});
    }
    c.instant("ping", "test", {{"why", "because"}});
    c.counter("track", {{"hits", 3}, {"misses", 1}});
  }
  const auto& evs = c.events();
  ASSERT_EQ(evs.size(), 4u);
  // Spans emit at destruction: inner closes before outer.
  EXPECT_EQ(evs[0].name, "inner");
  EXPECT_EQ(evs[0].phase, 'X');
  ASSERT_EQ(evs[0].args.size(), 2u);
  EXPECT_EQ(evs[0].args[1].second, "7");
  EXPECT_EQ(evs[1].name, "ping");
  EXPECT_EQ(evs[1].phase, 'i');
  EXPECT_EQ(evs[2].name, "track");
  EXPECT_EQ(evs[2].phase, 'C');
  EXPECT_TRUE(evs[2].numeric_args);
  EXPECT_EQ(evs[3].name, "outer");
  // Nesting falls out of ts/dur containment.
  EXPECT_LE(evs[3].ts_us, evs[0].ts_us);
  EXPECT_GE(evs[3].ts_us + evs[3].dur_us, evs[0].ts_us + evs[0].dur_us);
}

TEST(Trace, StopDisablesAndClears) {
  TraceCollector c;
  c.start("");
  c.instant("one", "test");
  EXPECT_EQ(c.event_count(), 1u);
  c.stop();
  EXPECT_FALSE(c.collecting());
  EXPECT_EQ(c.event_count(), 0u);
}

TEST(Trace, TruncateUnwindsEventsAfterMark) {
  TraceCollector c;
  c.start("");
  c.instant("kept", "test");
  const std::size_t mark = c.mark();
  c.instant("dropped-1", "test");
  c.instant("dropped-2", "test");
  EXPECT_EQ(c.event_count(), 3u);
  c.truncate(mark);
  ASSERT_EQ(c.event_count(), 1u);
  EXPECT_EQ(c.events()[0].name, "kept");
  // A span open across the truncation still emits afterwards.
  {
    TraceSpan late(&c, "late", "test");
  }
  EXPECT_EQ(c.event_count(), 2u);
}

// The satellite regression: spans still in flight when the collector is
// finalized must be closed — emitted as complete events tagged dangling —
// not silently dropped, and their destructors must then be inert.
TEST(Trace, StopClosesInFlightSpansAsDangling) {
  TraceCollector c;
  c.start("");
  std::string json;
  {
    TraceSpan outer(&c, "outer", "test");
    {
      TraceSpan inner(&c, "inner", "test");
      json = c.stop();
      // Both spans were open at stop: both must be in the document,
      // innermost closed first, each tagged dangling.
      EXPECT_NE(json.find("\"inner\""), std::string::npos);
      EXPECT_NE(json.find("\"outer\""), std::string::npos);
      EXPECT_NE(json.find("\"dangling\""), std::string::npos);
      // Destructors run after stop: must not crash or resurrect events.
    }
  }
  EXPECT_EQ(c.event_count(), 0u);
  JsonValue doc = parse_json(json);
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items.size(), 2u);
  EXPECT_EQ(events->items[0].find("name")->string_value, "inner");
  EXPECT_EQ(events->items[0].find("args")->find("dangling")->string_value,
            "true");
  EXPECT_EQ(events->items[1].find("name")->string_value, "outer");
}

TEST(Trace, ShardSharesEpochAndAppendsInOrder) {
  TraceCollector parent;
  parent.start("");
  parent.instant("parent-before", "test");

  TraceCollector shard;
  shard.start_shard_of(parent);
  ASSERT_TRUE(shard.collecting());
  shard.instant("shard-event", "test");
  {
    TraceSpan open(&shard, "shard-dangling", "test");
    parent.append(std::move(shard));
    // The shard's open span was closed by the merge; its destructor runs
    // after the append and must be a no-op.
  }
  EXPECT_FALSE(shard.collecting());
  ASSERT_EQ(parent.event_count(), 3u);
  EXPECT_EQ(parent.events()[0].name, "parent-before");
  EXPECT_EQ(parent.events()[1].name, "shard-event");
  EXPECT_EQ(parent.events()[2].name, "shard-dangling");
  // One shared timeline: shard timestamps are on the parent's epoch.
  EXPECT_GE(parent.events()[1].ts_us, parent.events()[0].ts_us);
}

TEST(Trace, ShardOfStoppedParentStaysOff) {
  TraceCollector parent;  // never started
  TraceCollector shard;
  shard.start_shard_of(parent);
  EXPECT_FALSE(shard.collecting());
  shard.instant("dropped", "test");
  parent.append(std::move(shard));
  EXPECT_EQ(parent.event_count(), 0u);
}

TEST(Trace, EmitsValidChromeTraceJson) {
  TraceCollector c;
  c.start("");
  {
    TraceSpan span(&c, "work", "cat");
    span.arg("detail", "quoted \"text\"\n");
  }
  c.counter("cache", {{"hits", 5}});
  std::string json = c.stop();
  JsonValue doc = parse_json(json);
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.find("displayTimeUnit"), nullptr);
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->items.size(), 2u);
  const JsonValue& span = events->items[0];
  EXPECT_EQ(span.find("name")->string_value, "work");
  EXPECT_EQ(span.find("ph")->string_value, "X");
  EXPECT_EQ(span.find("cat")->string_value, "cat");
  ASSERT_NE(span.find("ts"), nullptr);
  ASSERT_NE(span.find("dur"), nullptr);
  EXPECT_EQ(span.find("args")->find("detail")->string_value,
            "quoted \"text\"\n");
  const JsonValue& counter = events->items[1];
  EXPECT_EQ(counter.find("ph")->string_value, "C");
  EXPECT_EQ(counter.find("args")->find("hits")->number, 5.0);
}

}  // namespace
}  // namespace polaris
