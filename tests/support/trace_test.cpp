// support/trace: the scoped-span tracer behind `-trace=FILE`.
//
// Covers the collection lifecycle (start/stop, disabled-by-default), span
// nesting via ts/dur containment, instant and counter events, the
// mark/truncate unwinding hook the fault-isolation layer uses, and that
// the emitted document is valid Chrome trace JSON (validated with the
// in-tree parser).
#include "support/trace.h"

#include <gtest/gtest.h>

#include "support/json.h"

namespace polaris {
namespace {

/// RAII trace session writing nowhere; stop() returns the JSON.
class TraceSession {
 public:
  TraceSession() { trace::start(""); }
  ~TraceSession() {
    if (trace::on()) trace::stop();
  }
  std::string finish() { return trace::stop(); }
};

TEST(Trace, OffByDefaultAndSpansAreNoOps) {
  ASSERT_FALSE(trace::on());
  {
    trace::TraceSpan span("ghost", "test");
    span.arg("k", "v");
  }
  trace::instant("ghost", "test");
  trace::counter("ghost", {{"x", 1}});
  EXPECT_EQ(trace::event_count(), 0u);
  EXPECT_EQ(trace::mark(), 0u);
}

TEST(Trace, CollectsSpansInstantsAndCounters) {
  TraceSession session;
  {
    trace::TraceSpan outer("outer", "test");
    {
      trace::TraceSpan inner("inner", "test");
      inner.arg("key", "value");
      inner.arg("n", std::uint64_t{7});
    }
    trace::instant("ping", "test", {{"why", "because"}});
    trace::counter("track", {{"hits", 3}, {"misses", 1}});
  }
  const auto& evs = trace::events();
  ASSERT_EQ(evs.size(), 4u);
  // Spans emit at destruction: inner closes before outer.
  EXPECT_EQ(evs[0].name, "inner");
  EXPECT_EQ(evs[0].phase, 'X');
  ASSERT_EQ(evs[0].args.size(), 2u);
  EXPECT_EQ(evs[0].args[1].second, "7");
  EXPECT_EQ(evs[1].name, "ping");
  EXPECT_EQ(evs[1].phase, 'i');
  EXPECT_EQ(evs[2].name, "track");
  EXPECT_EQ(evs[2].phase, 'C');
  EXPECT_TRUE(evs[2].numeric_args);
  EXPECT_EQ(evs[3].name, "outer");
  // Nesting falls out of ts/dur containment.
  EXPECT_LE(evs[3].ts_us, evs[0].ts_us);
  EXPECT_GE(evs[3].ts_us + evs[3].dur_us, evs[0].ts_us + evs[0].dur_us);
}

TEST(Trace, StopDisablesAndClears) {
  {
    TraceSession session;
    trace::instant("one", "test");
    EXPECT_EQ(trace::event_count(), 1u);
    session.finish();
  }
  EXPECT_FALSE(trace::on());
  EXPECT_EQ(trace::event_count(), 0u);
}

TEST(Trace, TruncateUnwindsEventsAfterMark) {
  TraceSession session;
  trace::instant("kept", "test");
  const std::size_t mark = trace::mark();
  trace::instant("dropped-1", "test");
  trace::instant("dropped-2", "test");
  EXPECT_EQ(trace::event_count(), 3u);
  trace::truncate(mark);
  ASSERT_EQ(trace::event_count(), 1u);
  EXPECT_EQ(trace::events()[0].name, "kept");
  // A span open across the truncation still emits afterwards.
  {
    trace::TraceSpan late("late", "test");
  }
  EXPECT_EQ(trace::event_count(), 2u);
}

TEST(Trace, SpanOpenAcrossStopIsDropped) {
  std::string json;
  {
    trace::start("");
    trace::TraceSpan span("cut-off", "test");
    json = trace::stop();
    // Span destructs after stop: must not crash or resurrect the buffer.
  }
  EXPECT_EQ(trace::event_count(), 0u);
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
}

TEST(Trace, EmitsValidChromeTraceJson) {
  std::string json;
  {
    TraceSession session;
    {
      trace::TraceSpan span("work", "cat");
      span.arg("detail", "quoted \"text\"\n");
    }
    trace::counter("cache", {{"hits", 5}});
    json = session.finish();
  }
  JsonValue doc = parse_json(json);
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.find("displayTimeUnit"), nullptr);
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->items.size(), 2u);
  const JsonValue& span = events->items[0];
  EXPECT_EQ(span.find("name")->string_value, "work");
  EXPECT_EQ(span.find("ph")->string_value, "X");
  EXPECT_EQ(span.find("cat")->string_value, "cat");
  ASSERT_NE(span.find("ts"), nullptr);
  ASSERT_NE(span.find("dur"), nullptr);
  EXPECT_EQ(span.find("args")->find("detail")->string_value,
            "quoted \"text\"\n");
  const JsonValue& counter = events->items[1];
  EXPECT_EQ(counter.find("ph")->string_value, "C");
  EXPECT_EQ(counter.find("args")->find("hits")->number, 5.0);
}

}  // namespace
}  // namespace polaris
