// Explore any evaluation-suite program from the command line:
//   ./build/examples/explore_suite trfd
//   ./build/examples/explore_suite ocean --baseline --source
// Prints the per-loop analysis, diagnostics, and (optionally) the
// annotated output source, then executes it on the simulated machine.
#include <cstdio>
#include <cstring>
#include <string>

#include "driver/compiler.h"
#include "interp/interp.h"
#include "parser/parser.h"
#include "suite/suite.h"

int main(int argc, char** argv) {
  using namespace polaris;

  std::string name = "trfd";
  bool baseline = false;
  bool show_source = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--baseline") == 0) baseline = true;
    else if (std::strcmp(argv[i], "--source") == 0) show_source = true;
    else if (std::strcmp(argv[i], "--list") == 0) {
      for (const BenchProgram& p : benchmark_suite())
        std::printf("%-9s %-8s %s\n", p.name.c_str(), p.origin.c_str(),
                    p.technique.c_str());
      return 0;
    } else {
      name = argv[i];
    }
  }

  const BenchProgram& bp = suite_program(name);
  std::printf("program %s (%s, paper: %d lines, %.0f s serial)\n",
              bp.name.c_str(), bp.origin.c_str(), bp.paper_lines,
              bp.paper_serial_sec);
  std::printf("dominant pattern: %s\n\n", bp.technique.c_str());

  CompilerMode mode =
      baseline ? CompilerMode::Baseline : CompilerMode::Polaris;
  Compiler compiler(mode);
  CompileReport report;
  auto program = compiler.compile(bp.source, &report);

  std::printf("=== analysis (%s) ===\n",
              baseline ? "baseline" : "Polaris");
  for (const LoopReport& lr : report.loops)
    std::printf("  %-8s depth %d : %s%s\n", lr.loop.c_str(), lr.depth,
                lr.parallel ? "PARALLEL"
                            : (lr.speculative ? "SPECULATIVE" : "serial"),
                lr.serial_reason.empty()
                    ? ""
                    : ("  (" + lr.serial_reason + ")").c_str());
  std::printf("\n=== diagnostics ===\n");
  for (const Diagnostic& d : report.diagnostics.all())
    std::printf("  [%s] %s: %s\n", d.pass.c_str(), d.context.c_str(),
                d.message.c_str());

  if (show_source)
    std::printf("\n=== annotated source ===\n%s\n",
                report.annotated_source.c_str());

  auto reference = parse_program(bp.source);
  RunResult ref = run_program(*reference, MachineConfig{});
  ExecutionConfig cfg = backend_config(mode, *program, 8);
  RunResult run = run_program(*program, cfg.machine);
  std::printf("\n=== execution (8 processors) ===\n");
  std::printf("  output   : %s\n", run.output.back().c_str());
  std::printf("  identical: %s\n",
              ref.output == run.output ? "yes" : "NO (bug!)");
  std::printf("  speedup  : %.2f\n",
              static_cast<double>(ref.clock.serial) /
                  (static_cast<double>(run.clock.parallel) *
                   cfg.codegen_factor));
  return 0;
}
