// Run-time parallelization demo: the PD test (paper Section 3.5).
//
// The loop scatters through an index array computed at run time — no
// compile-time test can analyze it.  With the run-time option enabled,
// Polaris marks the loop speculative; at execution the loop runs in
// parallel while shadow arrays record the access pattern, and the
// post-execution analysis either commits (fully parallel) or restores the
// checkpoint and re-executes serially.  Both a passing and a failing
// scenario are shown.
#include <cstdio>
#include <string>

#include "driver/compiler.h"
#include "interp/interp.h"
#include "parser/parser.h"

namespace {

std::string program_with_stride(int stride) {
  // stride coprime to 997 (prime size) => permutation => PD test passes;
  // stride 0 => all writes collide on one element => test fails.
  std::string s = std::to_string(stride);
  return "      program scatter\n"
         "      parameter (n = 997)\n"
         "      real a(n), b(n)\n"
         "      integer idx(n)\n"
         "      do i = 1, n\n"
         "        b(i) = mod(i, 31)*0.125\n"
         "        idx(i) = mod(i*" + s + ", n) + 1\n"
         "      end do\n"
         "      do i = 1, n\n"
         "        a(idx(i)) = b(i)*2.0 + 1.0\n"
         "      end do\n"
         "      s1 = 0.0\n"
         "      do i = 1, n\n"
         "        s1 = s1 + a(i)\n"
         "      end do\n"
         "      print *, s1\n"
         "      end\n";
}

void demo(const char* label, int stride) {
  using namespace polaris;
  std::string source = program_with_stride(stride);

  auto reference = parse_program(source);
  RunResult ref = run_program(*reference, MachineConfig{});

  Options opts = Options::polaris();
  opts.runtime_pd_test = true;
  Compiler compiler(opts);
  CompileReport report;
  auto program = compiler.compile(source, &report);

  MachineConfig cfg;
  cfg.processors = 8;
  RunResult run = run_program(*program, cfg);

  std::printf("%s (stride %d):\n", label, stride);
  std::printf("  loops marked speculative : %d\n", report.doall.speculative);
  std::printf("  speculative attempts     : %d (failed %d)\n",
              run.speculative_attempts, run.speculative_failures);
  std::printf("  PD test cost             : %llu units\n",
              static_cast<unsigned long long>(run.pd_test_cost));
  std::printf("  output identical         : %s\n",
              ref.output == run.output ? "yes" : "NO (bug!)");
  std::printf("  speedup                  : %.2f\n\n",
              static_cast<double>(ref.clock.serial) /
                  static_cast<double>(run.clock.parallel));
}

}  // namespace

int main() {
  std::printf("=== the PD test at run time ===\n\n");
  demo("permutation scatter -> test PASSES, loop stays parallel", 5);
  demo("colliding scatter   -> test FAILS, serial re-execution", 0);
  return 0;
}
