// Quickstart: compile a small Fortran program with Polaris, inspect the
// per-loop report and the annotated source-to-source output, then execute
// both the original and the parallelized program on the simulated
// 8-processor machine and compare.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "driver/compiler.h"
#include "interp/interp.h"
#include "parser/parser.h"

int main() {
  using namespace polaris;

  const char* source =
      "      program demo\n"
      "      parameter (n = 4000)\n"
      "      real a(n), b(n)\n"
      "      do i = 1, n\n"
      "        b(i) = mod(i, 17)*0.25\n"
      "      end do\n"
      "      s = 0.0\n"
      "      do i = 1, n\n"
      "        a(i) = b(i)*2.0 + 1.0\n"
      "        s = s + a(i)\n"
      "      end do\n"
      "      print *, 'sum', s\n"
      "      end\n";

  // 1. Compile: the full Polaris pipeline (inlining, induction
  //    substitution, reductions, privatization, dependence tests).
  Compiler compiler(CompilerMode::Polaris);
  CompileReport report;
  auto program = compiler.compile(source, &report);

  std::printf("=== per-loop report ===\n");
  for (const LoopReport& lr : report.loops) {
    std::printf("  %s/%s: %s%s\n", lr.unit.c_str(), lr.loop.c_str(),
                lr.parallel ? "PARALLEL" : "serial",
                lr.serial_reason.empty()
                    ? ""
                    : (" (" + lr.serial_reason + ")").c_str());
  }

  std::printf("\n=== annotated source (Polaris output) ===\n%s\n",
              report.annotated_source.c_str());

  // 2. Execute: reference (sequential) vs parallelized on 8 processors.
  auto reference = parse_program(source);
  RunResult ref = run_program(*reference, MachineConfig{});

  MachineConfig cfg;
  cfg.processors = 8;
  RunResult par = run_program(*program, cfg);

  std::printf("=== execution ===\n");
  std::printf("  output            : %s\n", par.output[0].c_str());
  std::printf("  outputs identical : %s\n",
              ref.output == par.output ? "yes" : "NO (bug!)");
  std::printf("  serial time       : %llu units\n",
              static_cast<unsigned long long>(ref.clock.serial));
  std::printf("  8-processor time  : %llu units\n",
              static_cast<unsigned long long>(par.clock.parallel));
  std::printf("  speedup           : %.2f\n",
              static_cast<double>(ref.clock.serial) /
                  static_cast<double>(par.clock.parallel));
  return 0;
}
