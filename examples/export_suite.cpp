// Writes the 16 evaluation-suite programs out as .f files so they can be
// fed to the `polaris` CLI (or any Fortran tool):
//
//   ./build/examples/export_suite suite_f
//   ./build/src/driver/polaris -report suite_f/trfd.f
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "suite/suite.h"

int main(int argc, char** argv) {
  using namespace polaris;
  std::filesystem::path dir = argc > 1 ? argv[1] : "suite_f";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "export_suite: cannot create %s: %s\n",
                 dir.string().c_str(), ec.message().c_str());
    return 1;
  }
  for (const BenchProgram& p : benchmark_suite()) {
    std::filesystem::path file = dir / (p.name + ".f");
    std::ofstream out(file);
    if (!out) {
      std::fprintf(stderr, "export_suite: cannot write %s\n",
                   file.string().c_str());
      return 1;
    }
    out << p.source;
    std::printf("wrote %-10s (%s, %s)\n", file.string().c_str(),
                p.origin.c_str(), p.technique.c_str());
  }
  return 0;
}
