// TRFD walkthrough: the paper's Figure 2 end to end.
//
// The OLDA kernel carries an induction variable X through a triangular
// loop nest.  Polaris (1) substitutes the induction, producing the
// nonlinear subscript (i*(n^2+n) + j^2 - j)/2 + k + 1, then (2) proves all
// three loops independent with the range test — the exact min/max and
// monotonicity reasoning of Section 3.3.1 — and parallelizes the nest.
#include <cstdio>

#include "driver/compiler.h"
#include "interp/interp.h"
#include "parser/parser.h"
#include "symbolic/compare.h"

int main() {
  using namespace polaris;

  const char* source =
      "      program trfd\n"
      "      parameter (n = 40, m = 10)\n"
      "      real a(10000)\n"
      "      integer x\n"
      "      x = 0\n"
      "      do i = 0, m - 1\n"
      "        do j = 0, n - 1\n"
      "          do k = 0, j - 1\n"
      "            x = x + 1\n"
      "            a(x) = i*0.5 + j*0.25 + k*0.125\n"
      "          end do\n"
      "        end do\n"
      "      end do\n"
      "      s = 0.0\n"
      "      do i = 1, m*(n*n - n)/2\n"
      "        s = s + a(i)\n"
      "      end do\n"
      "      print *, s\n"
      "      end\n";

  std::printf("=== original (Figure 2, left) ===\n%s\n", source);

  Compiler compiler(CompilerMode::Polaris);
  CompileReport report;
  auto program = compiler.compile(source, &report);
  std::printf("=== after Polaris (Figure 2, right + directives) ===\n%s\n",
              report.annotated_source.c_str());

  // Reproduce the paper's hand proof for the outer loop: the gap between
  // consecutive outer iterations is n + 1 > 0.
  SymbolTable symtab;
  Symbol* n = symtab.declare("n", Type::integer(), SymbolKind::Variable);
  ExprPtr a2 = parse_expression("(i*(n**2 + n) + n**2 - n)/2", symtab);
  ExprPtr b2_next = parse_expression("((i+1)*(n**2 + n))/2 + 1", symtab);
  FactContext ctx;
  ExprPtr one = parse_expression("1", symtab);
  ctx.add_range(n, one.get(), nullptr);
  Polynomial gap = Polynomial::from_expr(*b2_next) - Polynomial::from_expr(*a2);
  std::printf("=== the paper's proof obligation ===\n");
  std::printf("  b2(i+1) - a2(i) = %s\n", gap.to_string().c_str());
  std::printf("  provably > 0 given n >= 1: %s\n\n",
              prove_gt0(gap, ctx) ? "yes" : "no");

  // Run it.
  auto reference = parse_program(source);
  RunResult ref = run_program(*reference, MachineConfig{});
  MachineConfig cfg;
  cfg.processors = 8;
  RunResult par = run_program(*program, cfg);
  std::printf("=== execution on 8 simulated processors ===\n");
  std::printf("  checksum: %s (reference %s)\n", par.output[0].c_str(),
              ref.output[0].c_str());
  std::printf("  speedup : %.2f\n",
              static_cast<double>(ref.clock.serial) /
                  static_cast<double>(par.clock.parallel));
  return 0;
}
