// Polaris vs a 1996-style compiler on three suite codes — a miniature of
// the paper's Figure 7 comparison, with per-loop verdicts side by side so
// the *reason* for each win is visible.
#include <cstdio>

#include "driver/compiler.h"
#include "interp/interp.h"
#include "parser/parser.h"
#include "suite/suite.h"

namespace {

void compare(const char* name) {
  using namespace polaris;
  const BenchProgram& bp = suite_program(name);

  auto reference = parse_program(bp.source);
  RunResult ref = run_program(*reference, MachineConfig{});

  std::printf("== %s (%s) ==\n", name, bp.technique.c_str());
  for (CompilerMode mode : {CompilerMode::Polaris, CompilerMode::Baseline}) {
    Compiler compiler(mode);
    CompileReport report;
    auto program = compiler.compile(bp.source, &report);
    ExecutionConfig cfg = backend_config(mode, *program, 8);
    RunResult run = run_program(*program, cfg.machine);
    double speedup = static_cast<double>(ref.clock.serial) /
                     (static_cast<double>(run.clock.parallel) *
                      cfg.codegen_factor);
    std::printf("  %-22s: %d/%d loops parallel, speedup %.2f\n",
                mode == CompilerMode::Polaris ? "Polaris"
                                              : "baseline (PFA-like)",
                report.doall.parallel, report.doall.loops, speedup);
    for (const LoopReport& lr : report.loops) {
      if (!lr.parallel && !lr.serial_reason.empty() && lr.depth == 0)
        std::printf("      serial %-8s: %s\n", lr.loop.c_str(),
                    lr.serial_reason.c_str());
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== why Polaris wins: three codes, two compilers ===\n\n");
  compare("trfd");   // induction substitution + range test
  compare("bdna");   // array privatization with the GSA gather proof
  compare("mdg");    // histogram reductions
  return 0;
}
