// Figure 1 reproduction: substitution of cascaded inductions in a
// triangular loop nest.  Prints the code before and after the pass (the
// paper shows exactly this before/after pair), verifies the closed form
// numerically against the recurrence, and reports whether the transformed
// nest parallelizes.
#include <cstdio>

#include "harness.h"
#include "parser/parser.h"
#include "parser/printer.h"
#include "passes/induction.h"
#include "symbolic/poly.h"

int main() {
  using namespace polaris;
  bench::heading("Figure 1: Substitution of cascaded inductions");

  const char* src =
      "      program fig1\n"
      "      parameter (n = 30)\n"
      "      real a(10000)\n"
      "      integer k1, k2\n"
      "      k1 = 0\n"
      "      k2 = 0\n"
      "      do i = 1, n\n"
      "        k1 = k1 + 1\n"
      "        do j = 1, i\n"
      "          k2 = k2 + k1\n"
      "          a(k2) = 1.0\n"
      "        end do\n"
      "      end do\n"
      "      end\n";

  auto prog = parse_program(src);
  std::printf("--- before ---\n%s\n", to_source(*prog->main()).c_str());

  Diagnostics diags;
  Options opts = Options::polaris();
  InductionResult r = substitute_inductions(*prog->main(), opts, diags);
  std::printf("--- after (%d inductions substituted) ---\n%s\n",
              r.substituted, to_source(*prog->main()).c_str());

  // Numeric verification of the closed form against the recurrence.
  DoStmt* inner = prog->main()->stmts().loops()[1];
  auto* store = static_cast<AssignStmt*>(inner->next());
  Polynomial sub = Polynomial::from_expr(
      *static_cast<const ArrayRef&>(store->lhs()).subscripts()[0]);
  auto atom = [&](const char* name) {
    return AtomTable::current().intern_symbol(
        prog->main()->symtab().lookup(name));
  };
  long long k1 = 0, k2 = 0;
  long long checked = 0, correct = 0;
  for (long long i = 1; i <= 30; ++i) {
    k1 += 1;
    for (long long j = 1; j <= i; ++j) {
      k2 += k1;
      Polynomial v =
          sub.substitute(atom("i"), Polynomial::constant(Rational(i)))
              .substitute(atom("j"), Polynomial::constant(Rational(j)))
              .substitute(atom("k1"), Polynomial::constant(Rational(0)))
              .substitute(atom("k2"), Polynomial::constant(Rational(0)));
      ++checked;
      if (v.is_constant() && v.constant_value() == Rational(k2)) ++correct;
    }
  }
  std::printf("closed-form check: %lld/%lld subscript values match the "
              "recurrence\n\n",
              correct, checked);
  return correct == checked ? 0 : 1;
}
