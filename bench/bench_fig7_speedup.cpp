// Figure 7 reproduction: speedup of Polaris vs the PFA-like baseline on
// the 16-program evaluation suite, 8 processors — the paper's headline
// chart.  Prints one bar pair per program plus the aggregate shape
// statistics the paper reports in prose.
#include <cstdio>

#include "harness.h"
#include "suite/suite.h"

int main() {
  using namespace polaris;
  bench::heading(
      "Figure 7: Speedup, Polaris vs PFA-like baseline (8 processors)");

  struct Row {
    std::string name;
    double polaris;
    double pfa;
  };
  std::vector<Row> rows;
  for (const BenchProgram& p : benchmark_suite()) {
    bench::Measurement pol = bench::measure(p.source, CompilerMode::Polaris, 8);
    bench::Measurement base =
        bench::measure(p.source, CompilerMode::Baseline, 8);
    rows.push_back({p.name, pol.speedup(), base.speedup()});
  }

  std::printf("%-9s %8s %8s\n", "program", "Polaris", "PFA");
  std::printf("%s\n", std::string(70, '-').c_str());
  for (const Row& r : rows) {
    std::printf("%-9s %8.2f %8.2f  P|%-40s\n", r.name.c_str(), r.polaris,
                r.pfa, bench::bar(r.polaris, 8.0).c_str());
    std::printf("%-9s %8s %8s  F|%-40s\n", "", "", "",
                bench::bar(r.pfa, 8.0).c_str());
  }

  int polaris_better = 0, pfa_better = 0, near_one = 0, good = 0;
  for (const Row& r : rows) {
    if (r.polaris > r.pfa * 1.10) ++polaris_better;
    if (r.pfa > r.polaris * 1.02) ++pfa_better;
    if (r.polaris < 2.0) ++near_one;
    if (r.polaris >= 3.0) ++good;
  }
  std::printf("%s\n", std::string(70, '-').c_str());
  std::printf(
      "shape summary: Polaris substantially better on %d/16 codes;\n"
      "PFA better on %d codes (paper: 2); Polaris speedup close to 1 on %d\n"
      "codes; Polaris >= 3x on %d codes (paper: 'successful in half of the\n"
      "codes tested').\n\n",
      polaris_better, pfa_better, near_one, good);
  return 0;
}
