// Table 1 reproduction: benchmark codes studied — origin, lines of code
// and serial execution time.  The paper's values are quoted next to the
// mini-application substitutes and their measured serial cost on the
// simulated machine.
#include <cstdio>
#include <sstream>

#include "harness.h"
#include "interp/interp.h"
#include "parser/parser.h"
#include "suite/suite.h"

int main() {
  using namespace polaris;
  bench::heading("Table 1: Benchmark codes studied (paper vs mini substitutes)");
  std::printf("%-9s %-8s | %11s %11s | %10s %14s\n", "Program", "Origin",
              "paper lines", "paper ser.s", "mini lines",
              "mini ser.units");
  std::printf("%s\n", std::string(72, '-').c_str());
  for (const BenchProgram& p : benchmark_suite()) {
    auto prog = parse_program(p.source);
    RunResult r = run_program(*prog, MachineConfig{});
    int mini_lines = 0;
    {
      std::istringstream is(p.source);
      std::string line;
      while (std::getline(is, line))
        if (!line.empty()) ++mini_lines;
    }
    std::printf("%-9s %-8s | %11d %11.0f | %10d %14llu\n", p.name.c_str(),
                p.origin.c_str(), p.paper_lines, p.paper_serial_sec,
                mini_lines,
                static_cast<unsigned long long>(r.clock.serial));
  }
  std::printf(
      "\nNote: mini programs reproduce each code's dominant loop patterns\n"
      "(see DESIGN.md); serial time is in deterministic cost units of the\n"
      "simulated machine, not wall-clock seconds.\n\n");
  return 0;
}
