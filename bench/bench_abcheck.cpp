// Suite-compile wall-clock probe: best-of-N in-process compile of the
// combined 16-code suite at -jobs=1, printed as one number.  Built for
// interleaved A/B runs against another checkout's binary (alternate the
// two binaries in one shell loop and compare bests/medians) — this
// 1-CPU container's timing drifts by tens of percent across minutes, so
// only paired measurements mean anything.  Usage: bench_abcheck [rounds].
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "driver/compiler.h"
#include "suite/suite.h"

using namespace polaris;

static std::string combined_suite_source() {
  std::string src = "      program driver\n      end\n";
  for (const BenchProgram& bp : benchmark_suite()) {
    std::string body = bp.source;
    const std::string card = "program " + bp.name;
    std::size_t at = body.find(card);
    if (at != std::string::npos)
      body.replace(at, card.size(), "subroutine " + bp.name);
    src += body;
    if (!body.empty() && body.back() != '\n') src += '\n';
  }
  return src;
}

int main(int argc, char** argv) {
  int rounds = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::string combined = combined_suite_source();
  Options opts = Options::polaris();
  opts.jobs = 1;
  double best = 1e30;
  for (int i = 0; i < rounds; ++i) {
    Compiler compiler(opts);
    auto t0 = std::chrono::steady_clock::now();
    auto prog = compiler.compile(combined);
    auto t1 = std::chrono::steady_clock::now();
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    best = std::min(best, ms);
  }
  std::printf("%.3f\n", best);
  return 0;
}
