// Figure 4 reproduction: array privatization requiring global (GSA)
// information — the definition covers A(1:MP), the use reads A(1:M*P),
// and proving MP >= M*P needs backward substitution of MP = M*P.
#include <cstdio>

#include "harness.h"
#include "parser/parser.h"
#include "passes/privatization.h"

int main() {
  using namespace polaris;
  bench::heading("Figure 4: Array privatization with a GSA query (MP >= M*P)");

  const char* src =
      "      program fig4\n"
      "      real a(2000), b(2000), c(2000)\n"
      "      m = 25\n"
      "      p = 40\n"
      "      mp = m*p\n"
      "      do i = 1, 50\n"
      "        do j = 1, mp\n"
      "          a(j) = b(j) + i*0.5\n"
      "        end do\n"
      "        do k = 1, m*p\n"
      "          c(k) = c(k) + a(k)\n"
      "        end do\n"
      "      end do\n"
      "      print *, c(1), c(1000)\n"
      "      end\n";

  std::printf("%s\n", src);
  auto prog = parse_program(src);
  DoStmt* iloop = prog->main()->stmts().loops()[0];

  for (bool gsa : {true, false}) {
    Options opts = Options::polaris();
    opts.gsa_queries = gsa;
    Diagnostics diags;
    PrivatizationResult r =
        analyze_privatization(*prog->main(), iloop, opts, diags);
    bool a_private = false;
    for (Symbol* s : r.private_arrays)
      if (s->name() == "a") a_private = true;
    std::printf("GSA queries %-3s : array A %s\n", gsa ? "on" : "off",
                a_private ? "PRIVATIZED (loop I parallel)"
                          : "not privatizable (loop I serial)");
  }

  bench::Measurement pol = bench::measure(src, CompilerMode::Polaris, 8);
  bench::Measurement base = bench::measure(src, CompilerMode::Baseline, 8);
  std::printf("\nspeedup on 8 processors: Polaris %.2f, baseline %.2f\n\n",
              pol.speedup(), base.speedup());
  return 0;
}
