// Ablation study (beyond the paper's figures): switch off one Polaris
// technique at a time and measure the speedup that remains on the suite
// program that depends on it.  This isolates each technique's
// contribution, mirroring the per-technique claims of Section 3.
#include <cstdio>

#include "harness.h"
#include "interp/interp.h"
#include "parser/parser.h"
#include "suite/suite.h"

int main() {
  using namespace polaris;
  bench::heading("Ablation: per-technique contribution (8 processors)");

  struct Ablation {
    const char* program;
    const char* option;   // switch turned off
    const char* label;
  };
  const Ablation ablations[] = {
      {"trfd", "induction_subst", "induction substitution"},
      {"trfd", "range_test", "range test"},
      {"ocean", "range_test", "range test"},
      {"arc2d", "array_privatization", "array privatization"},
      {"bdna", "array_privatization", "array privatization"},
      {"bdna", "gsa_queries", "GSA queries (monotonic proof)"},
      {"mdg", "histogram_reductions", "histogram reductions"},
      {"mdg", "reductions", "reductions entirely"},
      {"flo52", "array_privatization", "array privatization"},
      {"tfft2", "range_test", "range test"},
      {"hydro2d", "array_privatization", "array privatization"},
      {"appsp", "scalar_privatization", "scalar privatization"},
  };

  std::printf("%-9s %-34s %9s %9s %7s\n", "program", "technique removed",
              "full", "ablated", "ratio");
  std::printf("%s\n", std::string(72, '-').c_str());
  for (const Ablation& a : ablations) {
    const BenchProgram& p = suite_program(a.program);
    bench::Measurement full = bench::measure(p.source, CompilerMode::Polaris, 8);
    Options opts = Options::polaris();
    opts.set(a.option, false);
    bench::Measurement cut =
        bench::measure(p.source, CompilerMode::Polaris, 8, &opts);
    std::printf("%-9s %-34s %9.2f %9.2f %6.2fx\n", a.program, a.label,
                full.speedup(), cut.speedup(),
                full.speedup() / cut.speedup());
  }
  std::printf(
      "\nA ratio well above 1 means the program's parallelism depends on\n"
      "that technique, as the paper's per-code discussion predicts.\n\n");

  // Reduction implementation schemes (paper Section 3.2: blocked, private,
  // expanded) on the histogram-heavy mdg mini.
  bench::heading("Reduction schemes: blocked vs private vs expanded (mdg)");
  {
    const BenchProgram& p = suite_program("mdg");
    auto ref = polaris::parse_program(p.source);
    auto ref_run = run_program(*ref, MachineConfig{});
    std::printf("%-10s %12s %9s\n", "scheme", "time(units)", "speedup");
    struct S { const char* name; Options::ReductionScheme s; };
    const S schemes[] = {
        {"blocked", Options::ReductionScheme::Blocked},
        {"private", Options::ReductionScheme::Private},
        {"expanded", Options::ReductionScheme::Expanded},
    };
    for (const S& sch : schemes) {
      Compiler compiler(CompilerMode::Polaris);
      auto prog = compiler.compile(p.source);
      MachineConfig cfg;
      cfg.processors = 8;
      cfg.reduction_scheme = sch.s;
      RunResult run = run_program(*prog, cfg);
      std::printf("%-10s %12llu %9.2f\n", sch.name,
                  (unsigned long long)run.clock.parallel,
                  double(ref_run.clock.serial) / double(run.clock.parallel));
    }
    std::printf("\n");
  }

  // Static vs dynamic iteration scheduling on the triangular bdna loop.
  bench::heading("Scheduling: static block vs dynamic self-scheduling (bdna)");
  {
    const BenchProgram& p = suite_program("bdna");
    auto ref = polaris::parse_program(p.source);
    auto ref_run = run_program(*ref, MachineConfig{});
    for (auto sched : {MachineConfig::Scheduling::Static,
                       MachineConfig::Scheduling::Dynamic}) {
      Compiler compiler(CompilerMode::Polaris);
      auto prog = compiler.compile(p.source);
      MachineConfig cfg;
      cfg.processors = 8;
      cfg.scheduling = sched;
      RunResult run = run_program(*prog, cfg);
      std::printf("%-8s speedup %.2f\n",
                  sched == MachineConfig::Scheduling::Static ? "static"
                                                             : "dynamic",
                  double(ref_run.clock.serial) /
                      double(run.clock.parallel));
    }
    std::printf("\nThe triangular outer loop (work grows with i) benefits "
                "from\nself-scheduling, as 1990s DOALL runtimes observed.\n\n");
  }
  return 0;
}
