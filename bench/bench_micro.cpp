// Compiler micro-benchmarks (google-benchmark): throughput of the
// individual Polaris analyses — parsing, canonical polynomial arithmetic,
// the range test, induction substitution, GSA queries, full compilation,
// and interpreter execution.  These characterize the infrastructure cost,
// complementing the paper-reproduction harnesses.
#include <benchmark/benchmark.h>

#include "dep/ddtest.h"
#include "driver/compiler.h"
#include "interp/interp.h"
#include "parser/parser.h"
#include "passes/induction.h"
#include "suite/suite.h"
#include "symbolic/compare.h"

namespace {

using namespace polaris;

void BM_ParseSuiteProgram(benchmark::State& state) {
  const BenchProgram& p =
      benchmark_suite()[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    auto prog = parse_program(p.source);
    benchmark::DoNotOptimize(prog.get());
  }
  state.SetLabel(p.name);
}
BENCHMARK(BM_ParseSuiteProgram)->Arg(0)->Arg(9)->Arg(14);

void BM_PolynomialCanonicalization(benchmark::State& state) {
  SymbolTable symtab;
  ExprPtr e = parse_expression(
      "(i*(n**2 + n) + j**2 - j)/2 + k + 1 - ((i+1)*(n**2+n))/2", symtab);
  for (auto _ : state) {
    Polynomial p = Polynomial::from_expr(*e);
    benchmark::DoNotOptimize(&p);
  }
}
BENCHMARK(BM_PolynomialCanonicalization);

// --- symbolic kernel (hash-consed atoms + flat-term polynomials) -----------

void BM_AtomIntern(benchmark::State& state) {
  // Hash-consed interning fast path: every iteration re-interns the same
  // expressions, so this measures the hash + bucket-probe hit path.
  SymbolTable symtab;
  ExprPtr a = parse_expression("i*(n + 1)", symtab);
  ExprPtr b = parse_expression("j**2 - j", symtab);
  ExprPtr c = parse_expression("mod(k, 5)", symtab);
  AtomTable table;
  AtomTable::Scope scope(&table);
  for (auto _ : state) {
    AtomId x = table.intern(*a);
    AtomId y = table.intern(*b);
    AtomId z = table.intern(*c);
    benchmark::DoNotOptimize(x + y + z);
  }
}
BENCHMARK(BM_AtomIntern);

void BM_FromExprCached(benchmark::State& state) {
  // Memoized canonicalization: after the first conversion, every interior
  // node is a cache hit.
  SymbolTable symtab;
  ExprPtr e = parse_expression(
      "(i*(n**2 + n) + j**2 - j)/2 + k + 1 - ((i+1)*(n**2+n))/2", symtab);
  AtomTable table;
  AtomTable::Scope scope(&table);
  for (auto _ : state) {
    Polynomial p = Polynomial::from_expr(*e);
    benchmark::DoNotOptimize(&p);
  }
}
BENCHMARK(BM_FromExprCached);

void BM_FromExprUncached(benchmark::State& state) {
  // The same conversion with the cache disabled: the full recursive
  // convert() every iteration, i.e. the pre-cache cost.
  SymbolTable symtab;
  ExprPtr e = parse_expression(
      "(i*(n**2 + n) + j**2 - j)/2 + k + 1 - ((i+1)*(n**2+n))/2", symtab);
  AtomTable table;
  table.set_canon_cache_enabled(false);
  AtomTable::Scope scope(&table);
  for (auto _ : state) {
    Polynomial p = Polynomial::from_expr(*e);
    benchmark::DoNotOptimize(&p);
  }
}
BENCHMARK(BM_FromExprUncached);

void BM_PolynomialMultiply(benchmark::State& state) {
  // Flat-term merge multiply on Figure 2-sized operands.
  SymbolTable symtab;
  ExprPtr ea = parse_expression("i*n + j*j - j + 2*k + 1", symtab);
  ExprPtr eb = parse_expression("n**2 + n - 2*j + 3", symtab);
  Polynomial a = Polynomial::from_expr(*ea);
  Polynomial b = Polynomial::from_expr(*eb);
  for (auto _ : state) {
    Polynomial p = a * b;
    benchmark::DoNotOptimize(&p);
  }
}
BENCHMARK(BM_PolynomialMultiply);

void BM_SumOverFaulhaber(benchmark::State& state) {
  // Faulhaber closed form of the cascaded Figure 1/2 induction sum.
  SymbolTable symtab;
  Symbol* j = symtab.declare("j", Type::integer(), SymbolKind::Variable);
  Symbol* k = symtab.declare("k", Type::integer(), SymbolKind::Variable);
  AtomId aj = AtomTable::current().intern_symbol(j);
  AtomId ak = AtomTable::current().intern_symbol(k);
  ExprPtr lo = parse_expression("0", symtab);
  ExprPtr hi_k = parse_expression("j - 1", symtab);
  ExprPtr hi_j = parse_expression("n - 1", symtab);
  Polynomial one = Polynomial::from_expr(*parse_expression("1", symtab));
  Polynomial plo = Polynomial::from_expr(*lo);
  Polynomial phik = Polynomial::from_expr(*hi_k);
  Polynomial phij = Polynomial::from_expr(*hi_j);
  for (auto _ : state) {
    Polynomial inner = one.sum_over(ak, plo, phik);
    Polynomial outer = inner.sum_over(aj, plo, phij);
    benchmark::DoNotOptimize(&outer);
  }
}
BENCHMARK(BM_SumOverFaulhaber);

void BM_RangeTestTrfdNest(benchmark::State& state) {
  auto prog = parse_program(
      "      program t\n"
      "      real a(100000)\n"
      "      do i = 0, m - 1\n"
      "        do j = 0, n - 1\n"
      "          do k = 0, j - 1\n"
      "            a(k + 1 + (i*(n**2 + n) + j**2 - j)/2) = 1.0\n"
      "          end do\n"
      "        end do\n"
      "      end do\n"
      "      end\n");
  DoStmt* loop = prog->main()->stmts().loops()[0];
  Options opts = Options::polaris();
  SymbolSet none;
  for (auto _ : state) {
    Diagnostics diags;
    LoopDepStats s = test_loop_arrays(loop, opts, diags, none, "bm");
    benchmark::DoNotOptimize(&s);
  }
}
BENCHMARK(BM_RangeTestTrfdNest);

void BM_InductionSubstitution(benchmark::State& state) {
  const std::string src =
      "      program t\n"
      "      real a(10000)\n"
      "      integer k1, k2\n"
      "      k1 = 0\n"
      "      k2 = 0\n"
      "      do i = 1, n\n"
      "        k1 = k1 + 1\n"
      "        do j = 1, i\n"
      "          k2 = k2 + k1\n"
      "          a(k2) = 1.0\n"
      "        end do\n"
      "      end do\n"
      "      end\n";
  Options opts = Options::polaris();
  for (auto _ : state) {
    auto prog = parse_program(src);
    Diagnostics diags;
    InductionResult r = substitute_inductions(*prog->main(), opts, diags);
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_InductionSubstitution);

void BM_SymbolicCompare(benchmark::State& state) {
  SymbolTable symtab;
  Symbol* n = symtab.declare("n", Type::integer(), SymbolKind::Variable);
  ExprPtr lhs = parse_expression("(i*(n**2 + n) + n**2 - n)/2", symtab);
  ExprPtr rhs = parse_expression("((i+1)*(n**2 + n))/2 + 1", symtab);
  FactContext ctx;
  ExprPtr one = parse_expression("1", symtab);
  ctx.add_range(n, one.get(), nullptr);
  for (auto _ : state) {
    bool ok = prove_lt(*lhs, *rhs, ctx);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_SymbolicCompare);

void BM_FullCompile(benchmark::State& state) {
  const BenchProgram& p =
      benchmark_suite()[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    Compiler compiler(CompilerMode::Polaris);
    auto prog = compiler.compile(p.source);
    benchmark::DoNotOptimize(prog.get());
  }
  state.SetLabel(p.name);
}
BENCHMARK(BM_FullCompile)->Arg(3)->Arg(14);

void BM_InterpreterThroughput(benchmark::State& state) {
  const BenchProgram& p = suite_program("swim");
  auto prog = parse_program(p.source);
  std::uint64_t stmts = 0;
  for (auto _ : state) {
    RunResult r = run_program(*prog, MachineConfig{});
    stmts += r.statements;
    benchmark::DoNotOptimize(&r);
  }
  state.counters["stmts/s"] = benchmark::Counter(
      static_cast<double>(stmts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterThroughput);

}  // namespace

BENCHMARK_MAIN();
