// Figure 5 reproduction: the BDNA gather/compress kernel.  Privatizing A
// needs the monotonic-counter argument — IND(1:P) holds loop-K index
// values in [1, I-1], so all uses A(IND(L)) fall inside the definition
// A(1:I-1).
#include <cstdio>

#include "harness.h"
#include "parser/parser.h"
#include "passes/privatization.h"
#include "suite/suite.h"

int main() {
  using namespace polaris;
  bench::heading("Figure 5: BDNA gather/compress privatization");

  const BenchProgram& bdna = suite_program("bdna");
  auto prog = parse_program(bdna.source);
  // The kernel is the second top-level loop (after initialization).
  std::vector<DoStmt*> outer;
  for (DoStmt* d : prog->main()->stmts().loops())
    if (d->outer() == nullptr) outer.push_back(d);
  DoStmt* iloop = outer[1];

  Options opts = Options::polaris();
  Diagnostics diags;
  PrivatizationResult r =
      analyze_privatization(*prog->main(), iloop, opts, diags);

  std::printf("privatization of the outer I loop:\n");
  std::printf("  private scalars:");
  for (Symbol* s : r.private_scalars) std::printf(" %s", s->name().c_str());
  std::printf("\n  private arrays :");
  for (Symbol* s : r.private_arrays) std::printf(" %s", s->name().c_str());
  std::printf("\n  (the A array requires the monotonic IND(1:P) range "
              "proof)\n\n");

  bench::Measurement pol = bench::measure(bdna.source, CompilerMode::Polaris, 8);
  bench::Measurement base =
      bench::measure(bdna.source, CompilerMode::Baseline, 8);
  std::printf("bdna mini-application, 8 processors:\n");
  std::printf("  Polaris  speedup %.2f\n", pol.speedup());
  std::printf("  Baseline speedup %.2f (no array privatization)\n\n",
              base.speedup());
  return 0;
}
