#include "harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "parser/parser.h"

namespace polaris::bench {

namespace {

/// POLARIS_BENCH_JSON=<path> appends one JSON line per measurement with the
/// pass-manager instrumentation (per-pass wall time, IR deltas, cache hits).
void emit_pass_json(CompilerMode mode, int processors,
                    const CompileReport& report) {
  const char* path = std::getenv("POLARIS_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fprintf(f, "{\"mode\":\"%s\",\"processors\":%d,\"passes\":[",
               mode == CompilerMode::Polaris ? "polaris" : "baseline",
               processors);
  for (std::size_t i = 0; i < report.pass_timings.size(); ++i) {
    const PassTiming& t = report.pass_timings[i];
    std::fprintf(f,
                 "%s{\"pass\":\"%s\",\"runs\":%d,\"ms\":%.4f,\"diags\":%d,"
                 "\"failures\":%d,"
                 "\"stmt_delta\":%ld,\"expr_delta\":%ld,"
                 "\"analysis_queries\":%llu,\"analysis_hits\":%llu}",
                 i == 0 ? "" : ",", t.pass.c_str(), t.runs, t.ms, t.diags,
                 t.failures, t.stmt_delta, t.expr_delta,
                 static_cast<unsigned long long>(t.analysis_queries),
                 static_cast<unsigned long long>(t.analysis_hits));
  }
  std::fprintf(f,
               "],\"analysis\":{\"queries\":%llu,\"hits\":%llu,"
               "\"recomputes\":%llu,\"invalidations\":%llu}}\n",
               static_cast<unsigned long long>(report.analysis.queries),
               static_cast<unsigned long long>(report.analysis.hits),
               static_cast<unsigned long long>(report.analysis.recomputes),
               static_cast<unsigned long long>(report.analysis.invalidations));
  std::fclose(f);
}

}  // namespace

Measurement measure(const std::string& source, CompilerMode mode,
                    int processors, Options* custom_opts) {
  Measurement m;
  auto ref = parse_program(source);
  m.reference = run_program(*ref, MachineConfig{});

  Compiler compiler = custom_opts ? Compiler(*custom_opts) : Compiler(mode);
  auto prog = compiler.compile(source, &m.report);
  ExecutionConfig cfg = backend_config(mode, *prog, processors);
  m.codegen_factor = cfg.codegen_factor;
  m.run = run_program(*prog, cfg.machine);
  if (m.reference.output != m.run.output) {
    std::fprintf(stderr,
                 "FATAL: transformed output differs from reference\n");
    std::abort();
  }
  emit_pass_json(mode, processors, m.report);
  return m;
}

std::string bar(double value, double full_scale, int width) {
  int n = static_cast<int>(value / full_scale * width + 0.5);
  n = std::max(0, std::min(width, n));
  return std::string(static_cast<size_t>(n), '#');
}

void heading(const std::string& title) {
  std::string rule(72, '=');
  std::printf("%s\n%s\n%s\n", rule.c_str(), title.c_str(), rule.c_str());
}

}  // namespace polaris::bench
