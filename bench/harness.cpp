#include "harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "driver/report_json.h"
#include "parser/parser.h"

namespace polaris::bench {

namespace {

/// POLARIS_BENCH_JSON=<path> appends one bench row per measurement: the
/// full `-report-json` compile-report document (pass timings, loop
/// outcomes with reason codes, remarks, statistics, cache accounting)
/// wrapped with the measurement's mode and processor count.
void emit_pass_json(CompilerMode mode, int processors,
                    const CompileReport& report) {
  JsonValue row = bench_row("suite-measure");
  row.set("mode", JsonValue::str(mode == CompilerMode::Polaris
                                     ? "polaris"
                                     : "baseline"));
  row.set("processors", JsonValue::num(processors));
  row.set("report", compile_report_to_json(report));
  append_bench_row_env(row);
}

}  // namespace

Measurement measure(const std::string& source, CompilerMode mode,
                    int processors, Options* custom_opts) {
  Measurement m;
  auto ref = parse_program(source);
  m.reference = run_program(*ref, MachineConfig{});

  Compiler compiler = custom_opts ? Compiler(*custom_opts) : Compiler(mode);
  auto prog = compiler.compile(source, &m.report);
  ExecutionConfig cfg = backend_config(mode, *prog, processors);
  m.codegen_factor = cfg.codegen_factor;
  m.run = run_program(*prog, cfg.machine);
  if (m.reference.output != m.run.output) {
    std::fprintf(stderr,
                 "FATAL: transformed output differs from reference\n");
    std::abort();
  }
  emit_pass_json(mode, processors, m.report);
  return m;
}

std::string bar(double value, double full_scale, int width) {
  int n = static_cast<int>(value / full_scale * width + 0.5);
  n = std::max(0, std::min(width, n));
  return std::string(static_cast<size_t>(n), '#');
}

void heading(const std::string& title) {
  std::string rule(72, '=');
  std::printf("%s\n%s\n%s\n", rule.c_str(), title.c_str(), rule.c_str());
}

}  // namespace polaris::bench
