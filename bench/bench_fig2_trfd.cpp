// Figure 2 reproduction: induction substitution in TRFD's OLDA loop —
// the transformation introduces the nonlinear subscript
// (i*(n^2+n) + j^2 - j)/2 + k + 1 which only the range test can analyze.
// Prints the before/after code, each compiler's per-loop verdicts, and
// the resulting whole-program speedups (the kernel is ~70% of TRFD's
// serial time in the paper).
#include <cstdio>

#include "harness.h"
#include "suite/suite.h"

int main() {
  using namespace polaris;
  bench::heading("Figure 2: Induction substitution in TRFD (OLDA/100)");

  const BenchProgram& trfd = suite_program("trfd");

  for (CompilerMode mode : {CompilerMode::Polaris, CompilerMode::Baseline}) {
    const char* name =
        mode == CompilerMode::Polaris ? "Polaris" : "Baseline (PFA-like)";
    bench::Measurement m = bench::measure(trfd.source, mode, 8);
    std::printf("%s:\n", name);
    std::printf("  inductions substituted: %d (rejected %d)\n",
                m.report.induction.substituted, m.report.induction.rejected);
    for (const LoopReport& lr : m.report.loops) {
      std::printf("  loop %-8s depth %d : %s%s\n", lr.loop.c_str(), lr.depth,
                  lr.parallel ? "PARALLEL" : "serial",
                  lr.serial_reason.empty()
                      ? ""
                      : ("  (" + lr.serial_reason + ")").c_str());
    }
    std::printf("  speedup on 8 processors: %.2f\n\n", m.speedup());
  }

  // The transformed source (Polaris) showing the nonlinear subscript.
  bench::Measurement pol = bench::measure(trfd.source, CompilerMode::Polaris, 8);
  std::printf("--- Polaris output (excerpt around the kernel) ---\n");
  const std::string& src = pol.report.annotated_source;
  size_t pos = src.find("doall");
  size_t start = pos == std::string::npos ? 0 : src.rfind('\n', pos);
  size_t line_count = 0;
  for (size_t i = (start == std::string::npos ? 0 : start + 1);
       i < src.size() && line_count < 14; ++i) {
    std::putchar(src[i]);
    if (src[i] == '\n') ++line_count;
  }
  std::printf("\n");
  return 0;
}
