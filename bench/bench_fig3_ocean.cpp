// Figure 3 reproduction: the simplified FTRVMT/109 nest from OCEAN with
// the nonlinear term 258*x*j.  Shows that the linear battery (baseline)
// cannot parallelize any loop of the nest while the range test — with the
// loop-order permutation the paper describes — proves all three parallel.
#include <cstdio>

#include "dep/ddtest.h"
#include "harness.h"
#include "parser/parser.h"
#include "suite/suite.h"

int main() {
  using namespace polaris;
  bench::heading(
      "Figure 3: Simplified loop nest FTRVMT/109 (nonlinear subscripts)");

  // The bare nest for per-loop verdicts.
  const char* nest_src =
      "      program ftrvmt\n"
      "      parameter (x = 4)\n"
      "      integer z(0:3)\n"
      "      real a(35000)\n"
      "      do k = 0, x - 1\n"
      "        do j = 0, z(k)\n"
      "          do i = 0, 128\n"
      "            a(258*x*j + 129*k + i + 1) = 1.0\n"
      "            a(258*x*j + 129*k + i + 1 + 129*x) = 2.0\n"
      "          end do\n"
      "        end do\n"
      "      end do\n"
      "      end\n";
  auto prog = parse_program(nest_src);
  auto loops = prog->main()->stmts().loops();
  const char* names[] = {"K (outermost)", "J (middle)", "I (innermost)"};

  std::printf("per-loop carried-dependence verdicts:\n");
  std::printf("  %-16s %-22s %-22s\n", "loop", "linear tests only",
              "with range test");
  for (size_t l = 0; l < 3; ++l) {
    Diagnostics diags;
    Options lin = Options::baseline();
    SymbolSet none;
    LoopDepStats base =
        test_loop_arrays(loops[l], lin, diags, none, "ftrvmt");
    Options full = Options::polaris();
    LoopDepStats pol =
        test_loop_arrays(loops[l], full, diags, none, "ftrvmt");
    std::printf("  %-16s %-22s %-22s\n", names[l],
                base.parallel() ? "independent" : "assumed dependence",
                pol.parallel() ? "independent (rangetest)"
                               : "assumed dependence");
  }

  // Whole mini-application speedups.
  const BenchProgram& ocean = suite_program("ocean");
  bench::Measurement pol = bench::measure(ocean.source, CompilerMode::Polaris, 8);
  bench::Measurement base =
      bench::measure(ocean.source, CompilerMode::Baseline, 8);
  std::printf("\nocean mini-application, 8 processors:\n");
  std::printf("  Polaris  speedup %.2f\n", pol.speedup());
  std::printf("  Baseline speedup %.2f\n\n", base.speedup());
  return 0;
}
