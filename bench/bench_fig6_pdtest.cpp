// Figure 6 reproduction: speedup and potential slowdown of the PD test on
// a TRACK NLFILT/300-style loop.  The loop's access pattern goes through a
// subscript array computed at run time; it is fully parallel in 90% of its
// invocations (18 of 20 strides are permutations, 2 collide).  For each
// processor count the harness reports:
//   - speedup including both the parallel and serial (failed) instances,
//   - the potential slowdown (T_seq + T_pdt)/T_seq the paper plots —
//     the price that WOULD be paid if every test failed.
#include <cstdio>

#include "harness.h"
#include "parser/parser.h"

namespace {

// 20 invocations; strides coprime to 2000 yield permutations (parallel),
// strides 10 and 15 collide (the 10% serial re-executions).
const char* kTrackSource =
    "      program track\n"
    "      parameter (np = 2000, ninv = 20)\n"
    "      real dat(np), nf(np)\n"
    "      integer key(np), st(ninv)\n"
    "      data st /7, 11, 13, 17, 19, 23, 10, 29, 31, 37, 41, 43,\n"
    "     &  47, 49, 15, 53, 59, 61, 67, 71/\n"
    "      do i = 1, np\n"
    "        dat(i) = mod(i*3, 97)*0.01\n"
    "        nf(i) = 0.0\n"
    "      end do\n"
    "      do s = 1, ninv\n"
    "        do i = 1, np\n"
    "          key(i) = mod(i*st(s), np) + 1\n"
    "        end do\n"
    "        do i = 1, np\n"
    "          nf(key(i)) = nf(key(i))*0.25 + dat(i)*0.5\n"
    "     &      + dat(mod(i + s, np) + 1)*0.125\n"
    "     &      + dat(mod(i*3 + s, np) + 1)*0.0625\n"
    "     &      + (dat(i)*0.5 + 0.25)*(dat(i)*0.125 + 0.5)\n"
    "        end do\n"
    "      end do\n"
    "      cks = 0.0\n"
    "      do i = 1, np\n"
    "        cks = cks + nf(i)\n"
    "      end do\n"
    "      print *, 'track', cks\n"
    "      end\n";

}  // namespace

int main() {
  using namespace polaris;
  bench::heading(
      "Figure 6: PD test on TRACK NLFILT/300 (90% parallel invocations)");

  Options opts = Options::polaris();
  opts.runtime_pd_test = true;

  // Reference sequential execution.
  auto ref = parse_program(kTrackSource);
  RunResult ref_run = run_program(*ref, MachineConfig{});
  double t_seq = static_cast<double>(ref_run.clock.serial);

  std::printf("%5s | %8s | %10s | %8s | %18s\n", "procs", "speedup",
              "attempts", "failed", "potential slowdown");
  std::printf("%s\n", std::string(64, '-').c_str());
  for (int p : {1, 2, 3, 4, 5, 6, 7, 8}) {
    Compiler compiler(opts);
    CompileReport report;
    auto prog = compiler.compile(kTrackSource);
    MachineConfig cfg;
    cfg.processors = p;
    RunResult run = run_program(*prog, cfg);
    if (run.output != ref_run.output) {
      std::fprintf(stderr, "FATAL: speculative execution changed output\n");
      return 1;
    }
    double speedup =
        t_seq / static_cast<double>(run.clock.parallel);
    // Potential slowdown: the relative cost if parallelization had failed
    // everywhere — sequential time plus the (parallel) PD test overhead.
    double t_pdt = static_cast<double>(run.pd_test_cost);
    double slowdown = p == 1 ? 1.0 : (t_seq + t_pdt) / t_seq;
    std::printf("%5d | %8.2f | %10d | %8d | %18.3f\n", p, speedup,
                run.speculative_attempts, run.speculative_failures,
                slowdown);
  }
  std::printf(
      "\nshape check: speedup grows with processors despite the 10%% of\n"
      "invocations that fail the test and re-execute serially; the\n"
      "potential slowdown stays a small factor and shrinks with p\n"
      "(the PD test itself is fully parallel, O(a/p + log p)).\n\n");
  return 0;
}
