// Scaling curves (beyond the paper's single 8-processor point): speedup
// vs processor count for three representative codes — a regular 1-D sweep
// (swim), a privatization-bound 2-D sweep (arc2d) and the induction/range
// TRFD kernel — showing the saturation shapes the machine model produces.
//
// Plus the compiler's own scaling: a `-jobs={1,2,4,8}` sweep compiling all
// 16 suite codes as units of one program, measuring compile wall-clock.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "driver/report_json.h"
#include "harness.h"
#include "parser/parser.h"
#include "suite/suite.h"
#include "support/context.h"

namespace {

using namespace polaris;

/// One source holding every suite code as a separate program unit: each
/// mini's `program <name>` card is demoted to `subroutine <name>` under a
/// trivial driver, so the per-unit pass groups have 16 units to fan out
/// over worker threads (the minis themselves are single-unit programs,
/// where `-jobs` has nothing to parallelize).
std::string combined_suite_source() {
  std::string src = "      program driver\n      end\n";
  for (const BenchProgram& bp : benchmark_suite()) {
    std::string body = bp.source;
    const std::string card = "program " + bp.name;
    std::size_t at = body.find(card);
    if (at != std::string::npos)
      body.replace(at, card.size(), "subroutine " + bp.name);
    src += body;
    if (!body.empty() && body.back() != '\n') src += '\n';
  }
  return src;
}

/// Best-of-3 wall-clock of one full compile with the given options
/// (worker count, canonicalization cache, governor ceilings all ride on
/// `opts`).  `degradations` receives the last round's event count when
/// non-null.
double compile_wall_ms_opts(const std::string& source, const Options& opts,
                            std::size_t* degradations = nullptr) {
  double best = 0.0;
  for (int round = 0; round < 3; ++round) {
    Compiler compiler(opts);
    CompileReport rep;
    auto t0 = std::chrono::steady_clock::now();
    compiler.compile(source, &rep);
    auto t1 = std::chrono::steady_clock::now();
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (round == 0 || ms < best) best = ms;
    if (degradations != nullptr) *degradations = rep.degradations.size();
  }
  return best;
}

/// Legacy shape used by the jobs sweep and the canon-cache A/B.
double compile_wall_ms(const std::string& source, int jobs,
                       bool canon_cache = true) {
  Options opts = Options::polaris();
  opts.jobs = jobs;
  opts.symbolic_canon_cache = canon_cache;
  return compile_wall_ms_opts(source, opts);
}

/// POLARIS_BENCH_JSON=<path> appends one row per jobs value.
void emit_jobs_json(int jobs, double wall_ms, double speedup) {
  JsonValue row = bench_row("compile-jobs-sweep");
  row.set("codes", JsonValue::num(
                       static_cast<double>(benchmark_suite().size())));
  row.set("jobs", JsonValue::num(jobs));
  row.set("hardware_threads",
          JsonValue::num(static_cast<double>(
              std::thread::hardware_concurrency())));
  row.set("wall_ms", JsonValue::num(wall_ms));
  row.set("speedup", JsonValue::num(speedup));
  append_bench_row_env(row);
}

}  // namespace

int main() {
  using namespace polaris;
  bench::heading("Scaling: speedup vs processors (Polaris-compiled)");

  const char* names[] = {"swim", "arc2d", "trfd"};
  const int procs[] = {1, 2, 4, 8, 16, 32};

  std::printf("%-8s", "procs");
  for (const char* n : names) std::printf(" %9s", n);
  std::printf("\n%s\n", std::string(8 + 3 * 10, '-').c_str());

  for (int p : procs) {
    std::printf("%-8d", p);
    for (const char* n : names) {
      const BenchProgram& bp = suite_program(n);
      bench::Measurement m = bench::measure(bp.source, CompilerMode::Polaris, p);
      std::printf(" %9.2f", m.speedup());
    }
    std::printf("\n");
  }
  std::printf(
      "\nshape: near-linear while per-processor chunks dominate the\n"
      "fork/join and dispatch overheads, then saturating — the same\n"
      "Amdahl-plus-overhead behaviour the paper's SGI Challenge shows.\n\n");

  bench::heading("Compile scaling: -jobs sweep, 16-code suite as one program");

  const std::string combined = combined_suite_source();
  const int jobs_sweep[] = {1, 2, 4, 8};
  std::printf("(machine has %u hardware thread(s): worker counts beyond\n"
              "that add coordination overhead without concurrency)\n\n",
              std::thread::hardware_concurrency());
  std::printf("%-8s %12s %9s\n", "jobs", "wall ms", "speedup");
  std::printf("%s\n", std::string(31, '-').c_str());
  double base_ms = 0.0;
  for (int j : jobs_sweep) {
    double ms = compile_wall_ms(combined, j);
    if (j == 1) base_ms = ms;
    double speedup = ms == 0.0 ? 1.0 : base_ms / ms;
    std::printf("%-8d %12.3f %9.2f\n", j, ms, speedup);
    emit_jobs_json(j, ms, speedup);
  }
  std::printf(
      "\nper-unit pass groups and the per-unit parse fan the 16 program\n"
      "units out over worker threads; whole-program inlining and report\n"
      "assembly stay sequential, so the curve bends to that (now much\n"
      "smaller) serial fraction.\n\n");

  bench::heading("Frontend scaling: parallel per-unit parse, 17-unit source");

  // Parse-only wall clock: the unit splitter plus per-slice parses on the
  // worker pool, the piece that used to be the serial-fraction floor of
  // the -jobs sweep above.  Identical IR (ids included) at every count.
  std::printf("%-8s %12s %9s\n", "jobs", "wall ms", "speedup");
  std::printf("%s\n", std::string(31, '-').c_str());
  double parse_base_ms = 0.0;
  for (int j : jobs_sweep) {
    double best = 0.0;
    for (int round = 0; round < 5; ++round) {
      CompileContext cc;
      auto t0 = std::chrono::steady_clock::now();
      auto program = parse_program(combined, &cc, j);
      auto t1 = std::chrono::steady_clock::now();
      double ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      if (round == 0 || ms < best) best = ms;
      if (program->units().empty()) std::abort();  // keep the parse live
    }
    if (j == 1) parse_base_ms = best;
    double speedup = best == 0.0 ? 1.0 : parse_base_ms / best;
    std::printf("%-8d %12.3f %9.2f\n", j, best, speedup);
    JsonValue row = bench_row("compile-parallel-parse");
    row.set("codes", JsonValue::num(
                         static_cast<double>(benchmark_suite().size())));
    row.set("jobs", JsonValue::num(j));
    row.set("hardware_threads",
            JsonValue::num(static_cast<double>(
                std::thread::hardware_concurrency())));
    row.set("wall_ms", JsonValue::num(best));
    row.set("speedup", JsonValue::num(speedup));
    append_bench_row_env(row);
  }
  std::printf(
      "\nthe splitter's single linear scan stays sequential; everything\n"
      "after it — lexing, parsing, symbol construction — runs per unit\n"
      "on the persistent pool, then ids are renumbered in textual order.\n\n");

  bench::heading("Symbolic engine: canonicalization cache off vs on (-jobs=1)");

  // Interleaved A/B at a single worker count isolates the symbolic-kernel
  // memoization from threading effects: `off` is the engine doing every
  // Expression->Polynomial conversion from scratch, `on` the shipping
  // configuration.  Both produce byte-identical artifacts.
  double best_off = 0.0, best_on = 0.0;
  for (int round = 0; round < 3; ++round) {
    double off = compile_wall_ms(combined, 1, /*canon_cache=*/false);
    double on = compile_wall_ms(combined, 1, /*canon_cache=*/true);
    if (round == 0 || off < best_off) best_off = off;
    if (round == 0 || on < best_on) best_on = on;
  }
  double cache_speedup = best_on == 0.0 ? 1.0 : best_off / best_on;
  std::printf("%-12s %12s %9s\n", "canon cache", "wall ms", "speedup");
  std::printf("%s\n", std::string(35, '-').c_str());
  std::printf("%-12s %12.3f %9s\n", "off", best_off, "1.00");
  std::printf("%-12s %12.3f %9.2f\n", "on", best_on, cache_speedup);

  {
    JsonValue row = bench_row("compile-canon-cache");
    row.set("codes", JsonValue::num(
                         static_cast<double>(benchmark_suite().size())));
    row.set("jobs", JsonValue::num(1));
    row.set("wall_ms_cache_off", JsonValue::num(best_off));
    row.set("wall_ms_cache_on", JsonValue::num(best_on));
    row.set("speedup", JsonValue::num(cache_speedup));
    append_bench_row_env(row);
  }

  bench::heading("Resource governor: governed vs ungoverned suite compile");

  // The governed column runs the whole 16-unit program under moderately
  // hostile ceilings (enough to trip conservative bail-outs and some
  // ladder rungs); the overhead column is the governed check sites with
  // ceilings that never trip — the cost of the metering itself.
  Options ungoverned = Options::polaris();
  double free_ms = compile_wall_ms_opts(combined, ungoverned);

  Options headroom = ungoverned;
  headroom.compile_budget_ms = 60000.0;  // armed, never trips
  headroom.max_poly_terms = 1 << 20;
  headroom.max_atoms_per_unit = 1 << 20;
  double headroom_ms = compile_wall_ms_opts(combined, headroom);

  Options hostile = ungoverned;
  hostile.compile_budget_ms = 0.05;
  hostile.max_poly_terms = 8;
  std::size_t hostile_events = 0;
  double hostile_ms =
      compile_wall_ms_opts(combined, hostile, &hostile_events);

  std::printf("%-22s %12s %13s\n", "configuration", "wall ms",
              "degradations");
  std::printf("%s\n", std::string(49, '-').c_str());
  std::printf("%-22s %12.3f %13d\n", "ungoverned", free_ms, 0);
  std::printf("%-22s %12.3f %13d\n", "governed (headroom)", headroom_ms, 0);
  std::printf("%-22s %12.3f %13zu\n", "governed (hostile)", hostile_ms,
              hostile_events);
  std::printf(
      "\nheadroom vs ungoverned prices the *armed* meter: a thread-local\n"
      "governor lookup plus a saturating add per symbolic work site (the\n"
      "ungoverned default pays only an inactive-governor branch).  The\n"
      "hostile row stays at or below headroom despite ladder retries --\n"
      "bailed-out analyses do strictly less symbolic work.\n");

  {
    JsonValue row = bench_row("compile-governed");
    row.set("codes", JsonValue::num(
                         static_cast<double>(benchmark_suite().size())));
    row.set("jobs", JsonValue::num(1));
    row.set("wall_ms_ungoverned", JsonValue::num(free_ms));
    row.set("wall_ms_governed_headroom", JsonValue::num(headroom_ms));
    row.set("wall_ms_governed_hostile", JsonValue::num(hostile_ms));
    row.set("hostile_degradations",
            JsonValue::num(static_cast<double>(hostile_events)));
    append_bench_row_env(row);
  }
  return 0;
}
