// Scaling curves (beyond the paper's single 8-processor point): speedup
// vs processor count for three representative codes — a regular 1-D sweep
// (swim), a privatization-bound 2-D sweep (arc2d) and the induction/range
// TRFD kernel — showing the saturation shapes the machine model produces.
#include <cstdio>

#include "harness.h"
#include "suite/suite.h"

int main() {
  using namespace polaris;
  bench::heading("Scaling: speedup vs processors (Polaris-compiled)");

  const char* names[] = {"swim", "arc2d", "trfd"};
  const int procs[] = {1, 2, 4, 8, 16, 32};

  std::printf("%-8s", "procs");
  for (const char* n : names) std::printf(" %9s", n);
  std::printf("\n%s\n", std::string(8 + 3 * 10, '-').c_str());

  for (int p : procs) {
    std::printf("%-8d", p);
    for (const char* n : names) {
      const BenchProgram& bp = suite_program(n);
      bench::Measurement m = bench::measure(bp.source, CompilerMode::Polaris, p);
      std::printf(" %9.2f", m.speedup());
    }
    std::printf("\n");
  }
  std::printf(
      "\nshape: near-linear while per-processor chunks dominate the\n"
      "fork/join and dispatch overheads, then saturating — the same\n"
      "Amdahl-plus-overhead behaviour the paper's SGI Challenge shows.\n\n");
  return 0;
}
