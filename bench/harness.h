// Shared helpers for the paper-reproduction bench binaries.
#pragma once

#include <string>

#include "driver/compiler.h"
#include "interp/interp.h"

namespace polaris::bench {

/// One compiled-and-executed measurement of a program.
struct Measurement {
  RunResult reference;    ///< untransformed sequential run
  RunResult run;          ///< transformed run on the machine model
  CompileReport report;
  double codegen_factor = 1.0;

  /// Speedup over the untouched sequential program, including the backend
  /// code-quality factor (the paper's Figure 7 metric).
  double speedup() const {
    double par = static_cast<double>(run.clock.parallel) * codegen_factor;
    return par == 0.0 ? 1.0
                      : static_cast<double>(reference.clock.serial) / par;
  }
};

/// Compiles `source` under `mode`, runs reference + transformed.
Measurement measure(const std::string& source, CompilerMode mode,
                    int processors, Options* custom_opts = nullptr);

/// Renders a horizontal ASCII bar for bar-chart style output.
std::string bar(double value, double full_scale, int width = 40);

/// Prints a rule line and a centered title.
void heading(const std::string& title);

}  // namespace polaris::bench
